module F = Wire.Frame
module Span = Wd_obs.Span

type site_report = Frame_io.site_report = {
  frames_received : int;
  bytes_received : int;
  frames_sent : int;
  bytes_sent : int;
}

(* Frame I/O over file descriptors lives in {!Frame_io}, shared with the
   TCP backend. *)
open Frame_io

let frame_error what e = Frame_io.frame_error ~backend:"transport_socket" what e

(* ------------------------------------------------------------------ *)
(* Coordinator                                                         *)
(* ------------------------------------------------------------------ *)

type coord = {
  net : Network.t;
  path : string;
  timeout : float;
  listen_fd : Unix.file_descr;
  conns : Unix.file_descr option array;
  down : bool array;
  (* Relays re-accepted before their own crash window has ended (another
     site's window exit drained them from the backlog) wait here. *)
  pending : (int, Unix.file_descr) Hashtbl.t;
  reports : site_report option array;
  mutable frames_up : int;
  mutable frames_down : int;
  mutable wire_bytes_up : int;
  mutable wire_bytes_down : int;
  mutable control_frames : int;
  mutable control_bytes : int;
  mutable radio_copy_bytes : int;
  mutable skipped_up : int;
  mutable skipped_down : int;
  mutable reconnects : int;
  mutable span_frames_up : int;
  mutable span_frames_down : int;
  (* Driver hook run on every clock tick (after crash-window handling):
     the place a live telemetry endpoint gets polled from. *)
  mutable on_poll : (unit -> unit) option;
  mutable closed : bool;
}

(* Accept one connection and run the server half of the handshake.
   Returns the accepted site id, or None if the peer was rejected
   (wrong version, bad frame, bad site id). *)
let accept_handshake t =
  let fd, _ = Unix.accept t.listen_fd in
  set_timeouts fd t.timeout;
  match read_frame fd with
  | exception End_of_file ->
    Unix.close fd;
    None
  | Error e ->
    reject fd (F.error_to_string e);
    Unix.close fd;
    None
  | Ok (h, _, _) when h.F.kind <> F.Hello ->
    reject fd (Printf.sprintf "expected hello, got %s" (F.kind_to_string h.F.kind));
    Unix.close fd;
    None
  | Ok (h, _, _) ->
    let site = h.F.site in
    if site < 0 || site >= Array.length t.conns then begin
      reject fd (Printf.sprintf "site id %d out of range" site);
      Unix.close fd;
      None
    end
    else begin
      write_frame fd ~kind:F.Welcome ~site ~payload_len:0;
      (match t.conns.(site) with
      | None when not t.down.(site) -> t.conns.(site) <- Some fd
      | _ -> Hashtbl.replace t.pending site fd);
      Some site
    end

(* Restore a site's socket at crash-window exit: drain the backlog until
   this site's relay is back (stashing other sites' early reconnections
   in [pending] for their own window exits). *)
let reattach t site =
  match Hashtbl.find_opt t.pending site with
  | Some fd ->
    Hashtbl.remove t.pending site;
    t.conns.(site) <- Some fd;
    t.reconnects <- t.reconnects + 1
  | None ->
    while t.conns.(site) = None do
      ignore (accept_handshake t);
      (* [accept_handshake] slots this site directly (its window has
         ended) and stashes any other still-down site in [pending]. *)
      match Hashtbl.find_opt t.pending site with
      | Some fd ->
        Hashtbl.remove t.pending site;
        t.conns.(site) <- Some fd
      | None -> ()
    done;
    t.reconnects <- t.reconnects + 1

let on_time t time =
  let plan = Network.faults t.net in
  for site = 0 to Array.length t.conns - 1 do
    let is_down = Faults.is_down plan ~site ~time in
    if is_down && not t.down.(site) then begin
      (* Window entry: a crashed site is a real disconnection. *)
      t.down.(site) <- true;
      match t.conns.(site) with
      | Some fd ->
        Unix.close fd;
        t.conns.(site) <- None
      | None -> ()
    end
    else if (not is_down) && t.down.(site) then begin
      t.down.(site) <- false;
      reattach t site
    end
  done;
  match t.on_poll with None -> () | Some f -> f ()

(* --- tap: realize each ledger charge as a frame on the wire --- *)

(* One down-direction frame on [site]'s socket.  With a recorder on the
   ledger, the frame carries the span context of the message span the
   ledger tap opened around us ([Span.current_parent]), so the receiving
   process sees which traced operation caused the delivery. *)
let write_deliver t fd ~site ~payload =
  match Network.spans t.net with
  | None -> write_frame fd ~kind:F.Deliver ~site ~payload_len:payload
  | Some r ->
    let t0 = Span.now r in
    let span =
      {
        F.trace_id = Span.trace_id r;
        span_id = Span.current_parent r;
        parent_id = Span.root_parent;
        t1_ns = t0;
        t2_ns = 0L;
      }
    in
    let buf = spanned_buf ~kind:F.Deliver ~site ~payload_len:payload ~span in
    Span.observe_ns r ~name:"frame.encode" (Int64.sub (Span.now r) t0);
    write_all fd buf 0 (Bytes.length buf);
    t.span_frames_down <- t.span_frames_down + 1

let deliver t ~site ~payload =
  match t.conns.(site) with
  | Some fd ->
    write_deliver t fd ~site ~payload;
    t.frames_down <- t.frames_down + 1;
    t.wire_bytes_down <- t.wire_bytes_down + F.bytes ~payload
  | None -> t.skipped_down <- t.skipped_down + Wire.message ~payload

(* The synchronous Request_up -> Up exchange is the transport's natural
   round-trip point.  With a recorder attached the request ships a span
   context (fresh id, parented under the ledger's open message span) plus
   the coordinator's send stamp; the relay echoes the ids back with its
   own receive/send stamps, and the coordinator emits two spans: the
   relay's half ([relay.turnaround], stamped by the other process) as a
   child of the full round trip ([request_up], stamped here). *)
let request_up t ~site ~payload =
  match t.conns.(site) with
  | None -> t.skipped_up <- t.skipped_up + Wire.message ~payload
  | Some fd ->
    let spans = Network.spans t.net in
    let pending =
      match spans with
      | None ->
        let buf = frame_buf ~kind:F.Request_up ~site ~payload_len:4 in
        Bytes.set_int32_le buf F.header_bytes (Int32.of_int payload);
        write_all fd buf 0 (Bytes.length buf);
        None
      | Some r ->
        let parent = Span.current_parent r in
        let rtt_id = Span.fresh_id r in
        let t0 = Span.now r in
        let span =
          {
            F.trace_id = Span.trace_id r;
            span_id = rtt_id;
            parent_id = parent;
            t1_ns = t0;
            t2_ns = 0L;
          }
        in
        let buf = spanned_buf ~kind:F.Request_up ~site ~payload_len:4 ~span in
        Bytes.set_int32_le buf
          (F.header_bytes + F.span_bytes)
          (Int32.of_int payload);
        Span.observe_ns r ~name:"frame.encode" (Int64.sub (Span.now r) t0);
        write_all fd buf 0 (Bytes.length buf);
        t.span_frames_down <- t.span_frames_down + 1;
        Some (r, parent, rtt_id, t0)
    in
    t.control_frames <- t.control_frames + 1;
    t.control_bytes <- t.control_bytes + F.bytes ~payload:4;
    (match read_frame ?spans fd with
    | exception End_of_file ->
      failwith "transport_socket: site closed connection mid-exchange"
    | Error e -> frame_error "reading up frame" e
    | Ok (h, relay_span, _)
      when h.F.kind = F.Up && h.F.site = site && h.F.length = payload ->
      t.frames_up <- t.frames_up + 1;
      t.wire_bytes_up <- t.wire_bytes_up + F.bytes ~payload;
      if h.F.has_span then t.span_frames_up <- t.span_frames_up + 1;
      (match pending with
      | None -> ()
      | Some (r, parent, rtt_id, t0) ->
        let t1 = Span.now r in
        let time = Network.time t.net in
        (match relay_span with
        | Some sp ->
          ignore
            (Span.finish r ~name:"relay.turnaround" ~site ~parent:rtt_id
               ~time ~start_ns:sp.F.t1_ns ~end_ns:sp.F.t2_ns ()
              : Span.ctx)
        | None -> ());
        ignore
          (Span.finish r ~name:"request_up" ~site ~parent ~span_id:rtt_id
             ~time ~start_ns:t0 ~end_ns:t1 ()
            : Span.ctx))
    | Ok (h, _, _) ->
      failwith
        (Printf.sprintf
           "transport_socket: expected up(site=%d,len=%d), got %s(site=%d,len=%d)"
           site payload
           (F.kind_to_string h.F.kind)
           h.F.site h.F.length))

let medium_broadcast t ~payload =
  let wrote = ref 0 in
  Array.iteri
    (fun site conn ->
      match conn with
      | Some fd ->
        write_deliver t fd ~site ~payload;
        incr wrote;
        if !wrote = 1 then begin
          t.frames_down <- t.frames_down + 1;
          t.wire_bytes_down <- t.wire_bytes_down + F.bytes ~payload
        end
        else t.radio_copy_bytes <- t.radio_copy_bytes + F.bytes ~payload
      | None -> ())
    t.conns;
  if !wrote = 0 then t.skipped_down <- t.skipped_down + Wire.message ~payload

let install_tap t =
  Network.set_tap t.net
    (Some
       {
         Network.on_up = (fun ~site ~payload ~lost:_ -> request_up t ~site ~payload);
         on_down = (fun ~site ~payload ~lost:_ -> deliver t ~site ~payload);
         on_medium = (fun ~payload -> medium_broadcast t ~payload);
       })

(* --- teardown --- *)

let finish_site t site fd =
  (try
     write_frame fd ~kind:F.Finish ~site ~payload_len:0;
     match read_frame fd with
     | Ok (h, _, payload)
       when h.F.kind = F.Stats && h.F.length = stats_payload_len ->
       t.reports.(site) <- Some (decode_report payload)
     | _ | (exception End_of_file) -> ()
   with Unix.Unix_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

(* Adopt relays still sitting in the listen backlog (e.g. a site whose
   crash window never ended reconnected but was never re-accepted) so
   they too get a clean [Finish]. *)
let drain_backlog t =
  Unix.setsockopt_float t.listen_fd Unix.SO_RCVTIMEO 0.2;
  try
    while true do
      ignore (accept_handshake t)
    done
  with
  | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
  | End_of_file -> ()

let close t =
  if not t.closed then begin
    t.closed <- true;
    Network.set_tap t.net None;
    drain_backlog t;
    Hashtbl.iter
      (fun site fd ->
        if t.conns.(site) = None then t.conns.(site) <- Some fd
        else try Unix.close fd with Unix.Unix_error _ -> ())
      t.pending;
    Hashtbl.reset t.pending;
    Array.iteri
      (fun site conn ->
        match conn with
        | Some fd ->
          finish_site t site fd;
          t.conns.(site) <- None
        | None -> ())
      t.conns;
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    try Unix.unlink t.path with Unix.Unix_error _ -> ()
  end

let wire_stats t =
  Some
    {
      Transport.frames_up = t.frames_up;
      frames_down = t.frames_down;
      wire_bytes_up = t.wire_bytes_up;
      wire_bytes_down = t.wire_bytes_down;
      control_frames = t.control_frames;
      control_bytes = t.control_bytes;
      radio_copy_bytes = t.radio_copy_bytes;
      skipped_up = t.skipped_up;
      skipped_down = t.skipped_down;
      reconnects = t.reconnects;
      span_frames_up = t.span_frames_up;
      span_frames_down = t.span_frames_down;
      batch_envelopes = 0;
      batch_inner_frames = 0;
    }

module Backend = Transport.Of_carrier (struct
  type t = coord

  let name = "socket"
  let ledger t = t.net
  let on_time = on_time
  let close = close
  let wire_stats = wire_stats
end)

module Coordinator = struct
  include Backend

  let connect ?cost_model ?(timeout = 30.) ~path ~sites () =
    ignore_sigpipe ();
    (try Unix.unlink path with Unix.Unix_error _ -> ());
    let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try
       Unix.bind listen_fd (Unix.ADDR_UNIX path);
       Unix.listen listen_fd ((2 * sites) + 8);
       Unix.setsockopt_float listen_fd Unix.SO_RCVTIMEO timeout
     with e ->
       (try Unix.close listen_fd with Unix.Unix_error _ -> ());
       raise e);
    let t =
      {
        net = Network.create ?cost_model ~sites ();
        path;
        timeout;
        listen_fd;
        conns = Array.make sites None;
        down = Array.make sites false;
        pending = Hashtbl.create 7;
        reports = Array.make sites None;
        frames_up = 0;
        frames_down = 0;
        wire_bytes_up = 0;
        wire_bytes_down = 0;
        control_frames = 0;
        control_bytes = 0;
        radio_copy_bytes = 0;
        skipped_up = 0;
        skipped_down = 0;
        reconnects = 0;
        span_frames_up = 0;
        span_frames_down = 0;
        on_poll = None;
        closed = false;
      }
    in
    (try
       (* One wall-clock deadline covers the whole accept phase: the
          per-accept receive timeout is re-armed with the remaining
          budget, so k stragglers cost at most [timeout] total rather
          than [k * timeout]. *)
       let deadline = Unix.gettimeofday () +. timeout in
       let timed_out accepted =
         failwith
           (Printf.sprintf
              "socket coordinator: timed out after %gs waiting for %d of \
               %d site(s) to connect"
              timeout (sites - accepted) sites)
       in
       let accepted = ref 0 in
       while !accepted < sites do
         let remaining = deadline -. Unix.gettimeofday () in
         if remaining <= 0. then timed_out !accepted;
         Unix.setsockopt_float t.listen_fd Unix.SO_RCVTIMEO remaining;
         match accept_handshake t with
         | Some _ -> incr accepted
         | None -> ()
         | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
           ->
           (* SO_RCVTIMEO expired on the listening socket: a spawned site
              never connected.  Surface the documented Failure instead of
              the raw Unix_error so callers' error paths (and their child
              cleanup) engage. *)
           timed_out !accepted
       done;
       Unix.setsockopt_float t.listen_fd Unix.SO_RCVTIMEO timeout
     with e ->
       close t;
       raise e);
    install_tap t;
    t

  let pack c = Transport.Packed ((module Backend), c)
  let reports c = Array.copy c.reports
  let set_on_poll c f = c.on_poll <- f
end

let connect ?cost_model ?timeout ~path ~sites () =
  Coordinator.pack (Coordinator.connect ?cost_model ?timeout ~path ~sites ())

(* ------------------------------------------------------------------ *)
(* Site relay                                                          *)
(* ------------------------------------------------------------------ *)

module Site = struct
  (* Deadline-based connect retry: the budget is wall-clock, not an
     attempt count, so a slow-to-bind coordinator costs exactly the time
     it takes rather than [attempts * sleep] of luck.  The short sleep
     between polls only paces the loop; the deadline bounds it. *)
  let connect_retry ~deadline ~timeout connect_fn =
    let rec go () =
      let fd = connect_fn () in
      match fd with
      | Ok fd ->
        set_timeouts fd timeout;
        fd
      | Error e when Unix.gettimeofday () < deadline ->
        ignore (e : exn);
        Unix.sleepf 0.02;
        go ()
      | Error e -> raise e
    in
    go ()

  let connect_unix_once path () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> Ok fd
    | exception
        (Unix.Unix_error
           ((Unix.ECONNREFUSED | Unix.ENOENT | Unix.EAGAIN | Unix.EINTR), _, _)
         as e) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error e
    | exception e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise e

  let handshake fd ~site =
    write_frame fd ~kind:F.Hello ~site ~payload_len:0;
    match read_frame fd with
    | exception End_of_file ->
      failwith "transport_socket: coordinator closed connection during handshake"
    | Error e -> frame_error "handshake" e
    | Ok (h, _, _) when h.F.kind = F.Welcome -> ()
    | Ok (h, _, payload) when h.F.kind = F.Reject ->
      failwith
        (Printf.sprintf "transport_socket: rejected by coordinator: %s"
           (Bytes.to_string payload))
    | Ok (h, _, _) ->
      failwith
        (Printf.sprintf "transport_socket: expected welcome, got %s"
           (F.kind_to_string h.F.kind))

  let run ?(connect_timeout = 10.) ?(timeout = 30.) ~path ~site () =
    ignore_sigpipe ();
    let frames_received = ref 0 in
    let bytes_received = ref 0 in
    let frames_sent = ref 0 in
    let bytes_sent = ref 0 in
    let connect () =
      let deadline = Unix.gettimeofday () +. connect_timeout in
      let fd = connect_retry ~deadline ~timeout (connect_unix_once path) in
      try
        handshake fd ~site;
        fd
      with e ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        raise e
    in
    let fd = ref (connect ()) in
    let report () =
      {
        frames_received = !frames_received;
        bytes_received = !bytes_received;
        frames_sent = !frames_sent;
        bytes_sent = !bytes_sent;
      }
    in
    let send_stats () = Frame_io.send_stats !fd ~site (report ()) in
    let finished = ref false in
    while not !finished do
      match read_frame !fd with
      | exception
          ( End_of_file
          | Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ) ->
        (* The coordinator dropped us: a crash window.  Reconnect and
           carry the counters across — they measure the carrier, not the
           (coordinator-side) protocol state the crash erased. *)
        (try Unix.close !fd with Unix.Unix_error _ -> ());
        fd := connect ()
      | Error e -> frame_error "reading frame" e
      | Ok (h, rspan, payload) -> (
        (* Stamp arrival before any other work so the relay-side span
           half measures the exchange, not our bookkeeping. *)
        let recv_ns = if h.F.has_span then Clock.ns () else 0L in
        let span_extra = if h.F.has_span then F.span_bytes else 0 in
        match h.F.kind with
        | F.Deliver ->
          incr frames_received;
          bytes_received :=
            !bytes_received + F.bytes ~payload:h.F.length + span_extra
        | F.Request_up ->
          if h.F.length <> 4 then
            failwith "transport_socket: malformed request-up frame";
          incr frames_received;
          bytes_received := !bytes_received + F.bytes ~payload:4 + span_extra;
          let wanted = Int32.to_int (Bytes.get_int32_le payload 0) in
          if wanted < 0 || wanted > F.max_payload then
            failwith "transport_socket: bad requested up-payload size";
          (match rspan with
          | Some sp ->
            (* Our half of the round trip: echo the coordinator's ids,
               replace the stamps with our receive/send times.  The
               coordinator renders this as a [relay.turnaround] span. *)
            let reply =
              {
                F.trace_id = sp.F.trace_id;
                span_id = sp.F.span_id;
                parent_id = sp.F.parent_id;
                t1_ns = recv_ns;
                t2_ns = Clock.ns ();
              }
            in
            let buf =
              spanned_buf ~kind:F.Up ~site ~payload_len:wanted ~span:reply
            in
            write_all !fd buf 0 (Bytes.length buf);
            incr frames_sent;
            bytes_sent := !bytes_sent + F.bytes ~payload:wanted + F.span_bytes
          | None ->
            write_frame !fd ~kind:F.Up ~site ~payload_len:wanted;
            incr frames_sent;
            bytes_sent := !bytes_sent + F.bytes ~payload:wanted)
        | F.Finish ->
          send_stats ();
          (try Unix.close !fd with Unix.Unix_error _ -> ());
          finished := true
        | F.Reject ->
          failwith
            (Printf.sprintf "transport_socket: rejected by coordinator: %s"
               (Bytes.to_string payload))
        | F.Hello | F.Welcome | F.Up | F.Stats | F.Batch ->
          failwith
            (Printf.sprintf "transport_socket: unexpected %s frame"
               (F.kind_to_string h.F.kind)))
    done;
    report ()
end
