(** The [TRANSPORT] abstraction: one signature, many carriers.

    Protocol code (trackers, Monitor, Simulation) talks to the network
    through this module's packed {!t} and never names a backend.  A
    backend is a {e carrier}: it owns a {!Network.t} ledger — the single
    source of truth for delivery semantics, fault rolls, acked retries
    and byte accounting — plus whatever real machinery moves frames.

    Two backends ship:

    - {!Transport_sim}: the in-process simulator.  The carrier is the
      ledger itself; nothing else happens.  Byte-for-byte identical to
      calling {!Network} directly.
    - {!Transport_socket}: each site is a separate OS process connected
      over a Unix-domain socket, speaking the length-prefixed,
      version-tagged {!Wire.Frame} format.  The carrier installs a
      {!Network.tap} so that every byte the ledger charges is realized
      as a real frame written to (or read from) a socket, and exposes
      {!wire_stats} so tests can reconcile the ledger against bytes that
      actually crossed the wire.

    Because the delivery logic lives in the shared ledger and carriers
    only {e realize} its decisions, a fixed-seed run produces identical
    estimates, message counts and byte ledgers on every backend — the
    equivalence is by construction, and [test_transport.ml] pins it.

    Construction is backend-specific ([Transport_sim.create],
    [Transport_socket.Coordinator.connect]); the signature covers the
    {e running} transport: sending, clock/crash hooks, accounting reads,
    and teardown. *)

type wire_stats = {
  frames_up : int;  (** [Up] frames read off site sockets *)
  frames_down : int;  (** [Deliver] frames written (one per ledger charge) *)
  wire_bytes_up : int;  (** on-wire bytes of those [Up] frames *)
  wire_bytes_down : int;  (** on-wire bytes of those [Deliver] frames *)
  control_frames : int;  (** [Request_up] control frames written *)
  control_bytes : int;  (** on-wire bytes of control frames *)
  radio_copy_bytes : int;
      (** extra per-site copies of {!Network.Radio_broadcast} frames
          beyond the single ledger-charged transmission *)
  skipped_up : int;
      (** ledger bytes charged up while the site's socket was closed
          (crash window), so no frame was exchanged; ledger units *)
  skipped_down : int;  (** same, down direction; ledger units *)
  reconnects : int;  (** site sockets re-accepted after a crash window *)
  span_frames_up : int;
      (** frames read that carried a {!Wire.Frame.span} context block;
          0 unless a span recorder was attached to the ledger *)
  span_frames_down : int;
      (** frames written with a span context block (delivers, radio
          copies and [Request_up] control frames alike) *)
  batch_envelopes : int;
      (** {!Wire.Frame.Batch} envelopes written (TCP backend flushes);
          0 on carriers that write every frame individually *)
  batch_inner_frames : int;
      (** frames carried inside those envelopes; each is also counted in
          [frames_down]/[radio_copy_bytes] as if written alone *)
}
(** Counters a wire-backed carrier keeps alongside the ledger.  They tie
    the two accountings together:
    [wire_bytes_up
     = ledger bytes_up - skipped_up
       + frames_up * (Wire.Frame.header_bytes - Wire.header_bytes)]
    and symmetrically for down (with [radio_copy_bytes] and
    [control_bytes] on top of the down-direction socket traffic).
    Span context blocks are wire overhead outside both byte counts:
    actual socket traffic additionally includes
    [span_frames_* * Wire.Frame.span_bytes] in each direction, which is
    how the relays' raw byte reports reconcile when spans are on.
    Batch envelopes are the same kind of overhead in the down direction:
    a batching carrier's raw traffic additionally includes
    [batch_envelopes * Wire.Frame.header_bytes], while the inner frames
    keep their stand-alone accounting in [frames_down] /
    [wire_bytes_down] / [radio_copy_bytes]. *)

(** Interface every transport backend implements.  Everything except
    {!S.set_time}, {!S.close} and {!S.wire_stats} is semantically fixed
    by the backend's {!S.ledger}; backends differ in what {e else}
    happens (frames on a wire, socket lifecycle over crash windows). *)
module type S = sig
  type t

  val name : string
  (** Backend name for traces and errors, e.g. ["sim"], ["socket"]. *)

  val ledger : t -> Network.t
  (** The byte ledger this backend charges.  Shared accounting — and
      shared delivery semantics — across all backends. *)

  (** {2 Topology and observability} *)

  val sites : t -> int
  val cost_model : t -> Network.cost_model
  val set_sink : t -> Wd_obs.Sink.t -> unit
  val sink : t -> Wd_obs.Sink.t

  (** {2 Clock and faults}

      [set_time] is the crash hook: wire-backed carriers evaluate crash
      windows here, closing a crashed site's socket at window entry and
      re-accepting its reconnection at window exit. *)

  val set_time : t -> int -> unit
  val time : t -> int
  val set_faults : t -> Faults.plan -> unit
  val faults : t -> Faults.plan
  val site_down : t -> site:int -> bool

  (** {2 Sending}

      Same contracts as the {!Network} functions of the same names. *)

  val send_up : t -> site:int -> payload:int -> unit
  val send_down : t -> site:int -> payload:int -> unit
  val broadcast_down : t -> except:int option -> payload:int -> unit
  val transmit_up : t -> site:int -> payload:int -> Faults.outcome
  val transmit_down : t -> site:int -> payload:int -> Faults.outcome

  val transmit_broadcast :
    t -> except:int option -> payload:int -> Faults.outcome array

  val reliable_up :
    ?max_retries:int -> t -> site:int -> payload:int -> Network.delivery

  val reliable_down :
    ?max_retries:int -> t -> site:int -> payload:int -> Network.delivery

  (** {2 Teardown and wire accounting} *)

  val close : t -> unit
  (** Tear the transport down: a no-op for the simulator; for the socket
      backend, finish every site (collecting its final counters) and
      close all sockets.  Idempotent. *)

  val wire_stats : t -> wire_stats option
  (** [None] for purely simulated carriers; [Some] once a wire-backed
      carrier can report (socket backend: always). *)
end

type t = Packed : (module S with type t = 'a) * 'a -> t
(** A transport with its backend hidden: protocol code holds this. *)

(** {1 Dispatch}

    Each function below forwards to the packed backend's implementation
    of the same name. *)

val name : t -> string
val ledger : t -> Network.t
val sites : t -> int
val cost_model : t -> Network.cost_model
val set_sink : t -> Wd_obs.Sink.t -> unit
val sink : t -> Wd_obs.Sink.t
val set_time : t -> int -> unit
val time : t -> int
val set_faults : t -> Faults.plan -> unit
val faults : t -> Faults.plan
val site_down : t -> site:int -> bool
val send_up : t -> site:int -> payload:int -> unit
val send_down : t -> site:int -> payload:int -> unit
val broadcast_down : t -> except:int option -> payload:int -> unit
val transmit_up : t -> site:int -> payload:int -> Faults.outcome
val transmit_down : t -> site:int -> payload:int -> Faults.outcome

val transmit_broadcast :
  t -> except:int option -> payload:int -> Faults.outcome array

val reliable_up :
  ?max_retries:int -> t -> site:int -> payload:int -> Network.delivery

val reliable_down :
  ?max_retries:int -> t -> site:int -> payload:int -> Network.delivery

val close : t -> unit
val wire_stats : t -> wire_stats option

(** {1 Building backends} *)

(** What a backend actually has to supply: its ledger plus the three
    hooks where backends differ.  {!Of_carrier} derives the rest of
    {!S} by delegating to the ledger. *)
module type CARRIER = sig
  type t

  val name : string
  val ledger : t -> Network.t

  val on_time : t -> int -> unit
  (** Called by [set_time] {e after} the ledger clock has advanced; the
      socket carrier manages crash-window socket lifecycle here. *)

  val close : t -> unit
  val wire_stats : t -> wire_stats option
end

module Of_carrier (C : CARRIER) : S with type t = C.t
