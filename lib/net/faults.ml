type link = { drop : float; duplicate : float; corrupt : float }
type crash = { site : int; down_from : int; down_until : int }
type loss = Wd_obs.Event.loss = Link_drop | Corrupt_drop | Crash_drop
type outcome = Delivered of int | Lost of loss

type plan = {
  default_link : link;
  overrides : (int * link) list;
  crash_list : crash list;
  rng : Wd_hashing.Rng.t option; (* [None] only for the reliable plan *)
  plan_seed : int;
}

let reliable_link = { drop = 0.; duplicate = 0.; corrupt = 0. }

let none =
  {
    default_link = reliable_link;
    overrides = [];
    crash_list = [];
    rng = None;
    plan_seed = 0;
  }

let check_link { drop; duplicate; corrupt } =
  let prob name p =
    if not (p >= 0. && p <= 1.) then
      invalid_arg (Printf.sprintf "Faults.create: %s must be in [0, 1]" name)
  in
  prob "drop" drop;
  prob "duplicate" duplicate;
  prob "corrupt" corrupt;
  if drop +. duplicate +. corrupt > 1. then
    invalid_arg "Faults.create: drop + duplicate + corrupt must be <= 1"

let check_crash { site; down_from; down_until } =
  if site < 0 then invalid_arg "Faults.create: crash site must be >= 0";
  if down_from < 0 || down_from >= down_until then
    invalid_arg "Faults.create: crash window requires 0 <= down_from < down_until"

let create ?(drop = 0.) ?(duplicate = 0.) ?(corrupt = 0.) ?(link_overrides = [])
    ?(crashes = []) ~seed () =
  let default_link = { drop; duplicate; corrupt } in
  check_link default_link;
  List.iter (fun (_, l) -> check_link l) link_overrides;
  List.iter check_crash crashes;
  {
    default_link;
    overrides = link_overrides;
    crash_list = crashes;
    rng = Some (Wd_hashing.Rng.create seed);
    plan_seed = seed;
  }

let link_for t site =
  match List.assoc_opt site t.overrides with
  | Some l -> l
  | None -> t.default_link

let link_enabled l = l.drop > 0. || l.duplicate > 0. || l.corrupt > 0.

let enabled t =
  link_enabled t.default_link
  || List.exists (fun (_, l) -> link_enabled l) t.overrides
  || t.crash_list <> []

let has_crashes t = t.crash_list <> []
let crashes t = t.crash_list
let seed t = t.plan_seed

let is_down t ~site ~time =
  List.exists
    (fun c -> c.site = site && time >= c.down_from && time < c.down_until)
    t.crash_list

let roll t ~site ~time =
  match t.rng with
  | None -> Delivered 1
  | Some rng ->
    if is_down t ~site ~time then Lost Crash_drop
    else begin
      let l = link_for t site in
      if not (link_enabled l) then Delivered 1
      else begin
        (* One uniform draw split across the probability bands keeps the
           rng stream in lockstep with the transmission sequence. *)
        let u = Wd_hashing.Rng.float rng 1.0 in
        if u < l.drop then Lost Link_drop
        else if u < l.drop +. l.corrupt then Lost Corrupt_drop
        else if u < l.drop +. l.corrupt +. l.duplicate then Delivered 2
        else Delivered 1
      end
    end

let of_spec ~seed spec =
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let parse_prob clause v k =
    match float_of_string_opt v with
    | Some p when p >= 0. && p <= 1. -> Ok (k p)
    | _ -> fail "faults: %s wants a probability in [0, 1], got %S" clause v
  in
  let rec go clauses ~drop ~dup ~corrupt ~crashes =
    match clauses with
    | [] -> begin
      match
        create ~drop ~duplicate:dup ~corrupt ~crashes:(List.rev crashes)
          ~seed ()
      with
      | plan -> Ok plan
      | exception Invalid_argument m -> Error m
    end
    | clause :: rest -> begin
      match String.index_opt clause '=' with
      | None -> fail "faults: expected KEY=VALUE, got %S" clause
      | Some i -> begin
        let key = String.sub clause 0 i in
        let v = String.sub clause (i + 1) (String.length clause - i - 1) in
        match key with
        | "drop" ->
          Result.bind (parse_prob "drop" v Fun.id) (fun drop ->
              go rest ~drop ~dup ~corrupt ~crashes)
        | "dup" | "duplicate" ->
          Result.bind (parse_prob "dup" v Fun.id) (fun dup ->
              go rest ~drop ~dup ~corrupt ~crashes)
        | "corrupt" ->
          Result.bind (parse_prob "corrupt" v Fun.id) (fun corrupt ->
              go rest ~drop ~dup ~corrupt ~crashes)
        | "crash" -> begin
          match String.split_on_char ':' v with
          | [ s; f; u ] -> begin
            match
              (int_of_string_opt s, int_of_string_opt f, int_of_string_opt u)
            with
            | Some site, Some down_from, Some down_until
              when site >= 0 && down_from >= 0 && down_from < down_until ->
              go rest ~drop ~dup ~corrupt
                ~crashes:({ site; down_from; down_until } :: crashes)
            | _ ->
              fail
                "faults: crash wants SITE:FROM:UNTIL with 0 <= FROM < UNTIL, \
                 got %S"
                v
          end
          | _ -> fail "faults: crash wants SITE:FROM:UNTIL, got %S" v
        end
        | _ -> fail "faults: unknown key %S" key
      end
    end
  in
  let clauses =
    List.filter (fun s -> s <> "") (String.split_on_char ',' spec)
  in
  if clauses = [] then fail "faults: empty spec"
  else go clauses ~drop:0. ~dup:0. ~corrupt:0. ~crashes:[]
