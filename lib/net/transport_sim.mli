(** The in-process simulator backend of {!Transport}.

    The carrier {e is} the ledger: every operation is the corresponding
    {!Network} call and nothing else happens — no taps, no sockets, no
    extra randomness.  A protocol run through this backend is
    byte-for-byte and event-for-event identical to one that called
    {!Network} directly, which is what keeps the pre-redesign golden
    traces bit-identical. *)

include Transport.S with type t = Network.t

val create : ?cost_model:Network.cost_model -> sites:int -> unit -> Transport.t
(** Fresh simulator transport over a fresh ledger (defaults as
    {!Network.create}), packed for protocol code. *)

val of_network : Network.t -> Transport.t
(** Wrap an existing ledger (e.g. one a test has prepared) as a packed
    simulator transport.  The ledger is shared, not copied. *)
