(* Wall-clock nanoseconds for span timing, without an external monotonic
   clock dependency: [Unix.gettimeofday] scaled to nanoseconds and
   clamped monotone non-decreasing.  Readings are microsecond-granular
   (the resolution of gettimeofday) but exact at that granularity: the
   float is converted at microseconds, where doubles still have sub-unit
   precision, then widened.  Relays and the coordinator run on one host
   (Unix-domain sockets), so stamps from different processes share a
   clock source and cross-process latencies are meaningful.  Epoch
   nanoseconds (~1.7e18) fit both int64 and OCaml's 63-bit int, so the
   values survive the JSONL trace codec exactly. *)

let last = ref 0L

let ns () =
  let raw = Int64.mul (Int64.of_float (Unix.gettimeofday () *. 1e6)) 1000L in
  let v = if Int64.compare raw !last < 0 then !last else raw in
  last := v;
  v
