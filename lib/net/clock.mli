(** Wall-clock nanoseconds since the Unix epoch, monotone-clamped.

    The clock behind span timing ({!Wd_obs.Span}): [Unix.gettimeofday]
    widened to nanoseconds (microsecond-granular — sub-microsecond
    operations read as 0 or one tick) and clamped monotone non-decreasing
    within the process, so durations never go negative across wall-clock
    steps.  Processes on one host share the clock source, which is what
    makes cross-process round-trip latencies over the Unix-socket
    transport meaningful. *)

val ns : unit -> int64
