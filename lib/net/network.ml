module Sink = Wd_obs.Sink
module Event = Wd_obs.Event

type cost_model = Unicast | Radio_broadcast

let cost_model_to_string = function
  | Unicast -> "unicast"
  | Radio_broadcast -> "radio-broadcast"

type t = {
  k : int;
  model : cost_model;
  mutable bytes_up : int;
  mutable bytes_down : int;
  mutable messages_up : int;
  mutable messages_down : int;
  per_site_up : int array;
  per_site_down : int array;
  mutable medium : int;
  mutable sink : Sink.t;
  mutable time : int;
}

let create ?(cost_model = Unicast) ~sites () =
  if sites < 1 then invalid_arg "Network.create: sites must be >= 1";
  {
    k = sites;
    model = cost_model;
    bytes_up = 0;
    bytes_down = 0;
    messages_up = 0;
    messages_down = 0;
    per_site_up = Array.make sites 0;
    per_site_down = Array.make sites 0;
    medium = 0;
    sink = Sink.null;
    time = 0;
  }

let sites t = t.k
let cost_model t = t.model

let set_sink t sink = t.sink <- sink
let sink t = t.sink
let set_time t time = t.time <- time
let time t = t.time

let check_site t site =
  if site < 0 || site >= t.k then invalid_arg "Network: site index out of range"

let send_up t ~site ~payload =
  check_site t site;
  let bytes = Wire.message ~payload in
  t.bytes_up <- t.bytes_up + bytes;
  t.messages_up <- t.messages_up + 1;
  t.per_site_up.(site) <- t.per_site_up.(site) + bytes;
  if Sink.enabled t.sink then
    Sink.emit t.sink
      {
        Event.time = t.time;
        kind = Event.Message { dir = Event.Up; site; payload; bytes };
      }

let send_down t ~site ~payload =
  check_site t site;
  let bytes = Wire.message ~payload in
  t.bytes_down <- t.bytes_down + bytes;
  t.messages_down <- t.messages_down + 1;
  t.per_site_down.(site) <- t.per_site_down.(site) + bytes;
  if Sink.enabled t.sink then
    Sink.emit t.sink
      {
        Event.time = t.time;
        kind = Event.Message { dir = Event.Down; site; payload; bytes };
      }

let broadcast_down t ~except ~payload =
  let bytes = Wire.message ~payload in
  let recipients = t.k - (match except with Some _ -> 1 | None -> 0) in
  match t.model with
  | Unicast ->
    for site = 0 to t.k - 1 do
      if Some site <> except then begin
        t.bytes_down <- t.bytes_down + bytes;
        t.messages_down <- t.messages_down + 1;
        t.per_site_down.(site) <- t.per_site_down.(site) + bytes
      end
    done;
    if Sink.enabled t.sink && recipients > 0 then
      Sink.emit t.sink
        {
          Event.time = t.time;
          kind =
            Event.Broadcast
              {
                except;
                payload;
                bytes = recipients * bytes;
                messages = recipients;
                recipients;
              };
        }
  | Radio_broadcast ->
    (* One transmission reaches everyone; it occupies the shared medium
       once and is charged to no individual site. *)
    t.bytes_down <- t.bytes_down + bytes;
    t.messages_down <- t.messages_down + 1;
    t.medium <- t.medium + bytes;
    if Sink.enabled t.sink then
      Sink.emit t.sink
        {
          Event.time = t.time;
          kind =
            Event.Broadcast { except; payload; bytes; messages = 1; recipients };
        }

let bytes_up t = t.bytes_up
let bytes_down t = t.bytes_down
let total_bytes t = t.bytes_up + t.bytes_down
let messages_up t = t.messages_up
let messages_down t = t.messages_down
let total_messages t = t.messages_up + t.messages_down
let medium_bytes t = t.medium

let site_bytes_up t site =
  check_site t site;
  t.per_site_up.(site)

let site_bytes_down t site =
  check_site t site;
  t.per_site_down.(site)

let reset t =
  t.bytes_up <- 0;
  t.bytes_down <- 0;
  t.messages_up <- 0;
  t.messages_down <- 0;
  Array.fill t.per_site_up 0 t.k 0;
  Array.fill t.per_site_down 0 t.k 0;
  t.medium <- 0;
  t.time <- 0
