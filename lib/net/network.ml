module Sink = Wd_obs.Sink
module Event = Wd_obs.Event
module Span = Wd_obs.Span

type cost_model = Unicast | Radio_broadcast

let cost_model_to_string = function
  | Unicast -> "unicast"
  | Radio_broadcast -> "radio-broadcast"

type tap = {
  on_up : site:int -> payload:int -> lost:Faults.loss option -> unit;
  on_down : site:int -> payload:int -> lost:Faults.loss option -> unit;
  on_medium : payload:int -> unit;
}

type t = {
  k : int;
  model : cost_model;
  mutable bytes_up : int;
  mutable bytes_down : int;
  mutable messages_up : int;
  mutable messages_down : int;
  per_site_up : int array;
  per_site_down : int array;
  mutable medium : int;
  mutable sink : Sink.t;
  mutable time : int;
  mutable faults : Faults.plan;
  mutable debug_checks : bool;
  mutable link_drops : int;
  mutable corrupt_drops : int;
  mutable crash_drops : int;
  mutable dup_deliveries : int;
  mutable retry_count : int;
  mutable tap : tap option;
  mutable spans : Span.t option;
  (* Tree topology (None = the flat star).  Backbone counters live
     beside, not inside, [bytes_up]/[bytes_down]: site-link accounting,
     golden traces, and the wire reconciliation laws are untouched by
     installing a tree. *)
  mutable topo : Topology.t option;
  mutable paths : int array array; (* site -> aggregator route, first hop first *)
  mutable sub_count : int array; (* aggregator -> sites in its subtree *)
  mutable sub_sole : int array; (* the single such site when sub_count = 1 *)
  mutable last_hop : bool array; (* node -> is its parent the root? *)
  mutable agg_up : int array; (* bytes forwarded by each aggregator *)
  mutable agg_down : int array; (* bytes relayed down through each aggregator *)
  mutable backbone_up : int;
  mutable backbone_down : int;
  mutable backbone_msgs : int;
  mutable root_in : int; (* up-direction bytes that arrived at the root *)
  mutable up_delivered : int array; (* node -> delivered bytes on its parent edge *)
}

let create ?(cost_model = Unicast) ~sites () =
  if sites < 1 then invalid_arg "Network.create: sites must be >= 1";
  {
    k = sites;
    model = cost_model;
    bytes_up = 0;
    bytes_down = 0;
    messages_up = 0;
    messages_down = 0;
    per_site_up = Array.make sites 0;
    per_site_down = Array.make sites 0;
    medium = 0;
    sink = Sink.null;
    time = 0;
    faults = Faults.none;
    debug_checks = true;
    link_drops = 0;
    corrupt_drops = 0;
    crash_drops = 0;
    dup_deliveries = 0;
    retry_count = 0;
    tap = None;
    spans = None;
    topo = None;
    paths = Array.make sites [||];
    sub_count = [||];
    sub_sole = [||];
    last_hop = Array.make sites true;
    agg_up = [||];
    agg_down = [||];
    backbone_up = 0;
    backbone_down = 0;
    backbone_msgs = 0;
    root_in = 0;
    up_delivered = Array.make sites 0;
  }

let sites t = t.k
let cost_model t = t.model

let set_sink t sink = t.sink <- sink
let sink t = t.sink
let set_time t time = t.time <- time
let time t = t.time

let set_faults t plan = t.faults <- plan
let faults t = t.faults
let set_debug_checks t on = t.debug_checks <- on

let site_down t ~site = Faults.is_down t.faults ~site ~time:t.time
let set_tap t tap = t.tap <- tap
let set_spans t spans = t.spans <- spans
let spans t = t.spans

(* ------------------------------------------------------------------ *)
(* Tree topology. *)

let set_topology t topo =
  if Topology.sites topo <> t.k then
    invalid_arg "Network.set_topology: topology sites mismatch";
  let a = Topology.aggs topo in
  if Topology.is_flat topo then begin
    t.topo <- None;
    t.paths <- Array.make t.k [||];
    t.sub_count <- [||];
    t.sub_sole <- [||];
    t.last_hop <- Array.make t.k true;
    t.agg_up <- [||];
    t.agg_down <- [||];
    t.up_delivered <- Array.make t.k 0
  end
  else begin
    t.topo <- Some topo;
    t.paths <-
      Array.init t.k (fun i -> Array.of_list (Topology.path_of_site topo i));
    let sub_count = Array.make a 0 and sub_sole = Array.make a (-1) in
    Array.iteri
      (fun site path ->
        Array.iter
          (fun j ->
            sub_count.(j) <- sub_count.(j) + 1;
            sub_sole.(j) <- site)
          path)
      t.paths;
    t.sub_count <- sub_count;
    t.sub_sole <- sub_sole;
    t.last_hop <-
      Array.init (t.k + a) (fun node ->
          if node < t.k then Topology.site_parent topo node = Topology.Root
          else Topology.agg_parent topo (node - t.k) = Topology.Root);
    t.agg_up <- Array.make a 0;
    t.agg_down <- Array.make a 0;
    t.up_delivered <- Array.make (t.k + a) 0
  end;
  t.backbone_up <- 0;
  t.backbone_down <- 0;
  t.backbone_msgs <- 0;
  t.root_in <- 0

let topology t =
  match t.topo with Some tp -> tp | None -> Topology.flat ~sites:t.k

let tree_topology t = t.topo

let[@inline] agg_node_down t j =
  Faults.is_down t.faults ~site:(t.k + j) ~time:t.time

(* Any dead aggregator on [site]'s route to the root?  Pure schedule
   lookup — consumes no randomness — so runs without aggregator crash
   windows are bit-identical to the flat star. *)
let path_blocked t site =
  t.topo <> None
  && Faults.has_crashes t.faults
  && Array.exists (fun j -> agg_node_down t j) t.paths.(site)

(* One delivered up-direction frame cleared [node]'s edge toward its
   parent; a frame whose parent is the root arrived at the coordinator.
   [root_in] accumulates via the parent lookup while [up_delivered] is
   summed per edge over [last_hop] — two independent walks of the
   topology that the conservation law (and [check_ledger]) cross-check. *)
let note_up_delivered t ~node ~bytes =
  t.up_delivered.(node) <- t.up_delivered.(node) + bytes;
  let parent_is_root =
    match t.topo with
    | None -> true
    | Some tp ->
      if node < t.k then Topology.site_parent tp node = Topology.Root
      else Topology.agg_parent tp (node - t.k) = Topology.Root
  in
  if parent_is_root then t.root_in <- t.root_in + bytes

(* Tap helpers: fire once per charged message copy.  Taps observe the
   ledger, never steer it — no randomness, no counter writes — so an
   installed tap cannot perturb a run.  With a span recorder attached,
   each charged copy becomes a span wrapped around the tap call — under
   the socket transport the tap is where the real I/O happens, so the
   span measures the wire, and any spans the transport emits inside it
   (request/reply halves) become its children via [current_parent]. *)
let[@inline] tap_timed t ~name ~site run =
  match t.spans with
  | None -> run ()
  | Some r ->
    let start_ns = Span.now r in
    let id = Span.fresh_id r in
    let parent = Span.current_parent r in
    Span.set_current_parent r id;
    run ();
    Span.set_current_parent r parent;
    ignore
      (Span.finish r ~name ?site ~parent ~span_id:id ~time:t.time ~start_ns ()
        : Span.ctx)

let tap_up t ~site ~payload ~lost =
  tap_timed t ~name:"message.up" ~site:(Some site) (fun () ->
      match t.tap with None -> () | Some tap -> tap.on_up ~site ~payload ~lost)

let tap_down t ~site ~payload ~lost =
  tap_timed t ~name:"message.down" ~site:(Some site) (fun () ->
      match t.tap with
      | None -> ()
      | Some tap -> tap.on_down ~site ~payload ~lost)

let tap_medium t ~payload =
  tap_timed t ~name:"broadcast" ~site:None (fun () ->
      match t.tap with None -> () | Some tap -> tap.on_medium ~payload)

let check_site t site =
  if site < 0 || site >= t.k then invalid_arg "Network: site index out of range"

(* The down-side ledger invariant: every byte the coordinator sends lands
   either on one site's point-to-point link or on the shared radio medium
   (never both, never neither). *)
let check_ledger t =
  if t.debug_checks then begin
    let site_down_sum = Array.fold_left ( + ) 0 t.per_site_down in
    assert (t.bytes_down = t.medium + site_down_sum);
    (* Per-hop conservation under a tree: bytes that arrived at the root
       equal the delivered bytes summed over last-hop edges, and the
       backbone totals are exactly the per-aggregator sums. *)
    if t.topo <> None then begin
      assert (t.backbone_up = Array.fold_left ( + ) 0 t.agg_up);
      assert (t.backbone_down = Array.fold_left ( + ) 0 t.agg_down)
    end;
    let root_sum = ref 0 in
    Array.iteri
      (fun node delivered ->
        if t.last_hop.(node) then root_sum := !root_sum + delivered)
      t.up_delivered;
    assert (t.root_in = !root_sum)
  end

let emit t kind =
  if Sink.enabled t.sink then Sink.emit t.sink { Event.time = t.time; kind }

let note_loss t (loss : Faults.loss) =
  match loss with
  | Link_drop -> t.link_drops <- t.link_drops + 1
  | Corrupt_drop -> t.corrupt_drops <- t.corrupt_drops + 1
  | Crash_drop -> t.crash_drops <- t.crash_drops + 1

(* Charge one backbone edge: the frame left aggregator [j]'s parent and
   crossed the wire into [j] (or, for [dir = Up], left [j] toward its
   parent).  Backbone links are the reliable CDN backbone — only crash
   windows can kill a frame, never drop/duplicate/corrupt rolls — so no
   randomness is consumed here.  Backbone charges are never tapped:
   aggregation is logical (it lives in the coordinator's trackers), so
   the transports' real wires still carry exactly the site-link frames. *)
let charge_backbone t ~dir ~j ~payload ~bytes =
  (match dir with
  | Event.Up ->
    t.backbone_up <- t.backbone_up + bytes;
    t.agg_up.(j) <- t.agg_up.(j) + bytes
  | Event.Down ->
    t.backbone_down <- t.backbone_down + bytes;
    t.agg_down.(j) <- t.agg_down.(j) + bytes);
  t.backbone_msgs <- t.backbone_msgs + 1;
  emit t (Event.Forward { dir; node = t.k + j; payload; bytes })

(* Walk the coordinator→[site] backbone top-down, charging each edge
   until a dead aggregator swallows the frame (the edge *into* the dead
   aggregator is still charged: its parent did transmit).  Returns
   [true] when the frame cleared every backbone hop — always, without
   aggregator crash windows. *)
let charge_down_path t ~site ~payload =
  if t.topo = None then true
  else begin
    let path = t.paths.(site) in
    let n = Array.length path in
    if n = 0 then true
    else begin
      let bytes = Wire.message ~payload in
      let has_crash = Faults.has_crashes t.faults in
      let cleared = ref true in
      let i = ref (n - 1) in
      while !cleared && !i >= 0 do
        let j = path.(!i) in
        charge_backbone t ~dir:Event.Down ~j ~payload ~bytes;
        if has_crash && agg_node_down t j then cleared := false else decr i
      done;
      !cleared
    end
  end

(* Backbone edges for one coordinator broadcast under {!Unicast}: each
   tree edge carries exactly one copy, pruned below dead aggregators and
   below subtrees with no recipient. *)
let charge_broadcast_backbone t ~except ~payload =
  match t.topo with
  | None -> ()
  | Some tp ->
    let a = Topology.aggs tp in
    let bytes = Wire.message ~payload in
    let has_crash = Faults.has_crashes t.faults in
    (* reaches.(p): the frame comes out of aggregator [p] — everything
       above [p] is alive and so is [p].  0 unknown / 1 yes / 2 no. *)
    let state = Array.make a 0 in
    let rec reaches p =
      match state.(p) with
      | 1 -> true
      | 2 -> false
      | _ ->
        let above =
          match Topology.agg_parent tp p with
          | Topology.Root -> true
          | Topology.Agg q -> reaches q
        in
        let ok = above && not (has_crash && agg_node_down t p) in
        state.(p) <- (if ok then 1 else 2);
        ok
    in
    for j = 0 to a - 1 do
      let recipients_below =
        t.sub_count.(j) > 1
        || (t.sub_count.(j) = 1 && Some t.sub_sole.(j) <> except)
      in
      let parent_reaches =
        match Topology.agg_parent tp j with
        | Topology.Root -> true
        | Topology.Agg q -> reaches q
      in
      if recipients_below && parent_reaches then
        charge_backbone t ~dir:Event.Down ~j ~payload ~bytes
    done

let send_up t ~site ~payload =
  check_site t site;
  let bytes = Wire.message ~payload in
  t.bytes_up <- t.bytes_up + bytes;
  t.messages_up <- t.messages_up + 1;
  t.per_site_up.(site) <- t.per_site_up.(site) + bytes;
  note_up_delivered t ~node:site ~bytes;
  tap_up t ~site ~payload ~lost:None;
  if Sink.enabled t.sink then
    Sink.emit t.sink
      {
        Event.time = t.time;
        kind = Event.Message { dir = Event.Up; site; payload; bytes };
      }

(* Site-link half of a down send: exactly the seed's flat-star recorder.
   The public [send_down] prepends the backbone walk when a tree is
   installed. *)
let send_down_link t ~site ~payload =
  check_site t site;
  let bytes = Wire.message ~payload in
  t.bytes_down <- t.bytes_down + bytes;
  t.messages_down <- t.messages_down + 1;
  t.per_site_down.(site) <- t.per_site_down.(site) + bytes;
  tap_down t ~site ~payload ~lost:None;
  check_ledger t;
  if Sink.enabled t.sink then
    Sink.emit t.sink
      {
        Event.time = t.time;
        kind = Event.Message { dir = Event.Down; site; payload; bytes };
      }

let send_down t ~site ~payload =
  (* Plain recorders assume the reliable channel, where no aggregator is
     ever down, so the walk always clears. *)
  ignore (charge_down_path t ~site ~payload : bool);
  send_down_link t ~site ~payload

let broadcast_down t ~except ~payload =
  if t.model = Unicast then charge_broadcast_backbone t ~except ~payload;
  let bytes = Wire.message ~payload in
  let recipients = t.k - (match except with Some _ -> 1 | None -> 0) in
  match t.model with
  | Unicast ->
    for site = 0 to t.k - 1 do
      if Some site <> except then begin
        t.bytes_down <- t.bytes_down + bytes;
        t.messages_down <- t.messages_down + 1;
        t.per_site_down.(site) <- t.per_site_down.(site) + bytes;
        tap_down t ~site ~payload ~lost:None
      end
    done;
    check_ledger t;
    if Sink.enabled t.sink && recipients > 0 then
      Sink.emit t.sink
        {
          Event.time = t.time;
          kind =
            Event.Broadcast
              {
                except;
                payload;
                bytes = recipients * bytes;
                messages = recipients;
                recipients;
              };
        }
  | Radio_broadcast ->
    (* One transmission reaches everyone; it occupies the shared medium
       once and is charged to no individual site. *)
    t.bytes_down <- t.bytes_down + bytes;
    t.messages_down <- t.messages_down + 1;
    t.medium <- t.medium + bytes;
    tap_medium t ~payload;
    check_ledger t;
    if Sink.enabled t.sink then
      Sink.emit t.sink
        {
          Event.time = t.time;
          kind =
            Event.Broadcast { except; payload; bytes; messages = 1; recipients };
        }

(* Fault-aware delivery.  With a disabled plan these degrade to the plain
   [send_*] above — same charges, same events, no randomness consumed —
   so fault-free runs stay byte-identical to the reliable simulator. *)

let transmit_up t ~site ~payload =
  if not (Faults.enabled t.faults) then begin
    send_up t ~site ~payload;
    Faults.Delivered 1
  end
  else begin
    check_site t site;
    let bytes = Wire.message ~payload in
    let outcome = Faults.roll t.faults ~site ~time:t.time in
    (* Reinterpret a delivered link roll as a crash loss when a dead
       aggregator sits on the route: the frame cleared its first link,
       then died at the aggregator.  The roll above consumed exactly the
       randomness it always did, so runs without aggregator crash
       windows are untouched. *)
    let outcome =
      match outcome with
      | Faults.Delivered _ when path_blocked t site ->
        Faults.Lost Faults.Crash_drop
      | o -> o
    in
    (* The attempt occupies the uplink whether or not it arrives. *)
    t.bytes_up <- t.bytes_up + bytes;
    t.messages_up <- t.messages_up + 1;
    t.per_site_up.(site) <- t.per_site_up.(site) + bytes;
    (match outcome with
    | Faults.Delivered n ->
      tap_up t ~site ~payload ~lost:None;
      emit t (Event.Message { dir = Event.Up; site; payload; bytes });
      if n > 1 then begin
        let copies = n - 1 in
        let extra = copies * bytes in
        t.bytes_up <- t.bytes_up + extra;
        t.messages_up <- t.messages_up + copies;
        t.per_site_up.(site) <- t.per_site_up.(site) + extra;
        t.dup_deliveries <- t.dup_deliveries + copies;
        for _ = 1 to copies do
          tap_up t ~site ~payload ~lost:None
        done;
        emit t (Event.Duplicate { dir = Event.Up; site; bytes = extra; copies })
      end;
      note_up_delivered t ~node:site ~bytes:(n * bytes)
    | Faults.Lost loss ->
      note_loss t loss;
      tap_up t ~site ~payload ~lost:(Some loss);
      emit t (Event.Drop { dir = Event.Up; site; bytes; loss }));
    outcome
  end

(* Site-link half of a faulted down transmission (see [send_down_link]). *)
let transmit_down_link t ~site ~payload =
  if not (Faults.enabled t.faults) then begin
    send_down_link t ~site ~payload;
    Faults.Delivered 1
  end
  else begin
    check_site t site;
    let bytes = Wire.message ~payload in
    let outcome = Faults.roll t.faults ~site ~time:t.time in
    t.bytes_down <- t.bytes_down + bytes;
    t.messages_down <- t.messages_down + 1;
    t.per_site_down.(site) <- t.per_site_down.(site) + bytes;
    (match outcome with
    | Faults.Delivered n ->
      tap_down t ~site ~payload ~lost:None;
      emit t (Event.Message { dir = Event.Down; site; payload; bytes });
      if n > 1 then begin
        let copies = n - 1 in
        let extra = copies * bytes in
        t.bytes_down <- t.bytes_down + extra;
        t.messages_down <- t.messages_down + copies;
        t.per_site_down.(site) <- t.per_site_down.(site) + extra;
        t.dup_deliveries <- t.dup_deliveries + copies;
        for _ = 1 to copies do
          tap_down t ~site ~payload ~lost:None
        done;
        emit t
          (Event.Duplicate { dir = Event.Down; site; bytes = extra; copies })
      end
    | Faults.Lost loss ->
      note_loss t loss;
      tap_down t ~site ~payload ~lost:(Some loss);
      emit t (Event.Drop { dir = Event.Down; site; bytes; loss }));
    check_ledger t;
    outcome
  end

let transmit_down t ~site ~payload =
  if charge_down_path t ~site ~payload then transmit_down_link t ~site ~payload
  else begin
    (* Swallowed by a dead aggregator: the site link never saw the
       frame — no site-link charge, no link roll.  [bytes = 0] follows
       the radio reception-loss convention: the charge lives elsewhere
       (here, on the backbone edges the walk did record). *)
    note_loss t Faults.Crash_drop;
    emit t
      (Event.Drop { dir = Event.Down; site; bytes = 0; loss = Faults.Crash_drop });
    Faults.Lost Faults.Crash_drop
  end

let transmit_broadcast t ~except ~payload =
  if not (Faults.enabled t.faults) then begin
    broadcast_down t ~except ~payload;
    Array.init t.k (fun site ->
        if Some site = except then Faults.Delivered 0 else Faults.Delivered 1)
  end
  else begin
    match t.model with
    | Unicast ->
      (* Per-recipient links fail independently, so a faulted unicast
         broadcast decomposes into per-recipient transmissions (and its
         trace into per-recipient events the summary can reconcile).
         Under a tree the backbone edges are charged once for the whole
         broadcast — each tree edge carries one copy — and sites below a
         dead aggregator never see their site-link frame. *)
      charge_broadcast_backbone t ~except ~payload;
      let out = Array.make t.k (Faults.Delivered 0) in
      for site = 0 to t.k - 1 do
        if Some site <> except then
          if path_blocked t site then begin
            note_loss t Faults.Crash_drop;
            emit t
              (Event.Drop
                 { dir = Event.Down; site; bytes = 0; loss = Faults.Crash_drop });
            out.(site) <- Faults.Lost Faults.Crash_drop
          end
          else out.(site) <- transmit_down_link t ~site ~payload
      done;
      out
    | Radio_broadcast ->
      (* One transmission on the shared medium, charged once; what can
         still fail is each site's reception, which costs nothing extra. *)
      let bytes = Wire.message ~payload in
      let recipients = t.k - (match except with Some _ -> 1 | None -> 0) in
      t.bytes_down <- t.bytes_down + bytes;
      t.messages_down <- t.messages_down + 1;
      t.medium <- t.medium + bytes;
      tap_medium t ~payload;
      check_ledger t;
      emit t
        (Event.Broadcast { except; payload; bytes; messages = 1; recipients });
      Array.init t.k (fun site ->
          if Some site = except then Faults.Delivered 0
          else begin
            match Faults.roll t.faults ~site ~time:t.time with
            | Faults.Delivered _ -> Faults.Delivered 1
            | Faults.Lost loss ->
              note_loss t loss;
              emit t
                (Event.Drop { dir = Event.Down; site; bytes = 0; loss });
              Faults.Lost loss
          end)
  end

type delivery = { received : bool; acked : bool; attempts : int }

let arrived = function
  | Faults.Delivered n -> n > 0
  | Faults.Lost _ -> false

let reliable_up ?(max_retries = 5) t ~site ~payload =
  if not (Faults.enabled t.faults) then begin
    send_up t ~site ~payload;
    { received = true; acked = true; attempts = 1 }
  end
  else begin
    let bytes = Wire.message ~payload in
    let received = ref false in
    let acked = ref false in
    let attempts = ref 0 in
    let budget = 1 + max 0 max_retries in
    while (not !acked) && !attempts < budget do
      if !attempts > 0 then begin
        t.retry_count <- t.retry_count + 1;
        emit t
          (Event.Retry { dir = Event.Up; site; attempt = !attempts; bytes })
      end;
      incr attempts;
      if arrived (transmit_up t ~site ~payload) then begin
        received := true;
        if arrived (transmit_down t ~site ~payload:Wire.ack_bytes) then
          acked := true
      end
    done;
    { received = !received; acked = !acked; attempts = !attempts }
  end

let reliable_down ?(max_retries = 5) t ~site ~payload =
  if not (Faults.enabled t.faults) then begin
    send_down t ~site ~payload;
    { received = true; acked = true; attempts = 1 }
  end
  else begin
    let bytes = Wire.message ~payload in
    let received = ref false in
    let acked = ref false in
    let attempts = ref 0 in
    let budget = 1 + max 0 max_retries in
    while (not !acked) && !attempts < budget do
      if !attempts > 0 then begin
        t.retry_count <- t.retry_count + 1;
        emit t
          (Event.Retry { dir = Event.Down; site; attempt = !attempts; bytes })
      end;
      incr attempts;
      if arrived (transmit_down t ~site ~payload) then begin
        received := true;
        if arrived (transmit_up t ~site ~payload:Wire.ack_bytes) then
          acked := true
      end
    done;
    { received = !received; acked = !acked; attempts = !attempts }
  end

(* One aggregator→parent backbone hop: aggregator [agg] merged what it
   received from its children and forwards [payload] bytes of new
   information toward the root.  Trackers call this once per hop after a
   delivered site contribution, pricing each hop by what is genuinely
   new to that aggregator — the tree's dedup savings.  Backbone links
   only fail by crash; a dead parent swallows the (still charged)
   frame. *)
let forward_up t ~agg ~payload =
  match t.topo with
  | None -> invalid_arg "Network.forward_up: no tree topology installed"
  | Some tp ->
    if agg < 0 || agg >= Topology.aggs tp then
      invalid_arg "Network.forward_up: aggregator out of range";
    let bytes = Wire.message ~payload in
    charge_backbone t ~dir:Event.Up ~j:agg ~payload ~bytes;
    let delivered =
      match Topology.agg_parent tp agg with
      | Topology.Root -> true
      | Topology.Agg p -> not (Faults.has_crashes t.faults && agg_node_down t p)
    in
    if delivered then note_up_delivered t ~node:(t.k + agg) ~bytes
    else begin
      note_loss t Faults.Crash_drop;
      emit t
        (Event.Drop
           {
             dir = Event.Up;
             site = t.k + agg;
             bytes = 0;
             loss = Faults.Crash_drop;
           })
    end;
    delivered

let bytes_up t = t.bytes_up
let bytes_down t = t.bytes_down
let total_bytes t = t.bytes_up + t.bytes_down
let messages_up t = t.messages_up
let messages_down t = t.messages_down
let total_messages t = t.messages_up + t.messages_down
let medium_bytes t = t.medium

let site_bytes_up t site =
  check_site t site;
  t.per_site_up.(site)

let site_bytes_down t site =
  check_site t site;
  t.per_site_down.(site)

let backbone_bytes_up t = t.backbone_up
let backbone_bytes_down t = t.backbone_down
let backbone_bytes t = t.backbone_up + t.backbone_down
let backbone_messages t = t.backbone_msgs
let grand_total_bytes t = total_bytes t + backbone_bytes t
let root_bytes_in t = t.root_in

let check_agg t agg =
  match t.topo with
  | None -> invalid_arg "Network: no tree topology installed"
  | Some tp ->
    if agg < 0 || agg >= Topology.aggs tp then
      invalid_arg "Network: aggregator index out of range"

let agg_bytes_up t agg =
  check_agg t agg;
  t.agg_up.(agg)

let agg_bytes_down t agg =
  check_agg t agg;
  t.agg_down.(agg)

let edge_delivered_up t ~node =
  if node < 0 || node >= Array.length t.up_delivered then
    invalid_arg "Network.edge_delivered_up: node out of range";
  t.up_delivered.(node)

let link_drops t = t.link_drops
let corrupt_drops t = t.corrupt_drops
let crash_drops t = t.crash_drops
let drops t = t.link_drops + t.corrupt_drops + t.crash_drops
let duplicate_deliveries t = t.dup_deliveries
let retries t = t.retry_count

let reset t =
  check_ledger t;
  t.bytes_up <- 0;
  t.bytes_down <- 0;
  t.messages_up <- 0;
  t.messages_down <- 0;
  Array.fill t.per_site_up 0 t.k 0;
  Array.fill t.per_site_down 0 t.k 0;
  t.medium <- 0;
  t.time <- 0;
  t.link_drops <- 0;
  t.corrupt_drops <- 0;
  t.crash_drops <- 0;
  t.dup_deliveries <- 0;
  t.retry_count <- 0;
  Array.fill t.agg_up 0 (Array.length t.agg_up) 0;
  Array.fill t.agg_down 0 (Array.length t.agg_down) 0;
  t.backbone_up <- 0;
  t.backbone_down <- 0;
  t.backbone_msgs <- 0;
  t.root_in <- 0;
  Array.fill t.up_delivered 0 (Array.length t.up_delivered) 0
