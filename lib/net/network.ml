module Sink = Wd_obs.Sink
module Event = Wd_obs.Event
module Span = Wd_obs.Span

type cost_model = Unicast | Radio_broadcast

let cost_model_to_string = function
  | Unicast -> "unicast"
  | Radio_broadcast -> "radio-broadcast"

type tap = {
  on_up : site:int -> payload:int -> lost:Faults.loss option -> unit;
  on_down : site:int -> payload:int -> lost:Faults.loss option -> unit;
  on_medium : payload:int -> unit;
}

type t = {
  k : int;
  model : cost_model;
  mutable bytes_up : int;
  mutable bytes_down : int;
  mutable messages_up : int;
  mutable messages_down : int;
  per_site_up : int array;
  per_site_down : int array;
  mutable medium : int;
  mutable sink : Sink.t;
  mutable time : int;
  mutable faults : Faults.plan;
  mutable debug_checks : bool;
  mutable link_drops : int;
  mutable corrupt_drops : int;
  mutable crash_drops : int;
  mutable dup_deliveries : int;
  mutable retry_count : int;
  mutable tap : tap option;
  mutable spans : Span.t option;
}

let create ?(cost_model = Unicast) ~sites () =
  if sites < 1 then invalid_arg "Network.create: sites must be >= 1";
  {
    k = sites;
    model = cost_model;
    bytes_up = 0;
    bytes_down = 0;
    messages_up = 0;
    messages_down = 0;
    per_site_up = Array.make sites 0;
    per_site_down = Array.make sites 0;
    medium = 0;
    sink = Sink.null;
    time = 0;
    faults = Faults.none;
    debug_checks = true;
    link_drops = 0;
    corrupt_drops = 0;
    crash_drops = 0;
    dup_deliveries = 0;
    retry_count = 0;
    tap = None;
    spans = None;
  }

let sites t = t.k
let cost_model t = t.model

let set_sink t sink = t.sink <- sink
let sink t = t.sink
let set_time t time = t.time <- time
let time t = t.time

let set_faults t plan = t.faults <- plan
let faults t = t.faults
let set_debug_checks t on = t.debug_checks <- on

let site_down t ~site = Faults.is_down t.faults ~site ~time:t.time
let set_tap t tap = t.tap <- tap
let set_spans t spans = t.spans <- spans
let spans t = t.spans

(* Tap helpers: fire once per charged message copy.  Taps observe the
   ledger, never steer it — no randomness, no counter writes — so an
   installed tap cannot perturb a run.  With a span recorder attached,
   each charged copy becomes a span wrapped around the tap call — under
   the socket transport the tap is where the real I/O happens, so the
   span measures the wire, and any spans the transport emits inside it
   (request/reply halves) become its children via [current_parent]. *)
let[@inline] tap_timed t ~name ~site run =
  match t.spans with
  | None -> run ()
  | Some r ->
    let start_ns = Span.now r in
    let id = Span.fresh_id r in
    let parent = Span.current_parent r in
    Span.set_current_parent r id;
    run ();
    Span.set_current_parent r parent;
    ignore
      (Span.finish r ~name ?site ~parent ~span_id:id ~time:t.time ~start_ns ()
        : Span.ctx)

let tap_up t ~site ~payload ~lost =
  tap_timed t ~name:"message.up" ~site:(Some site) (fun () ->
      match t.tap with None -> () | Some tap -> tap.on_up ~site ~payload ~lost)

let tap_down t ~site ~payload ~lost =
  tap_timed t ~name:"message.down" ~site:(Some site) (fun () ->
      match t.tap with
      | None -> ()
      | Some tap -> tap.on_down ~site ~payload ~lost)

let tap_medium t ~payload =
  tap_timed t ~name:"broadcast" ~site:None (fun () ->
      match t.tap with None -> () | Some tap -> tap.on_medium ~payload)

let check_site t site =
  if site < 0 || site >= t.k then invalid_arg "Network: site index out of range"

(* The down-side ledger invariant: every byte the coordinator sends lands
   either on one site's point-to-point link or on the shared radio medium
   (never both, never neither). *)
let check_ledger t =
  if t.debug_checks then begin
    let site_down_sum = Array.fold_left ( + ) 0 t.per_site_down in
    assert (t.bytes_down = t.medium + site_down_sum)
  end

let emit t kind =
  if Sink.enabled t.sink then Sink.emit t.sink { Event.time = t.time; kind }

let note_loss t (loss : Faults.loss) =
  match loss with
  | Link_drop -> t.link_drops <- t.link_drops + 1
  | Corrupt_drop -> t.corrupt_drops <- t.corrupt_drops + 1
  | Crash_drop -> t.crash_drops <- t.crash_drops + 1

let send_up t ~site ~payload =
  check_site t site;
  let bytes = Wire.message ~payload in
  t.bytes_up <- t.bytes_up + bytes;
  t.messages_up <- t.messages_up + 1;
  t.per_site_up.(site) <- t.per_site_up.(site) + bytes;
  tap_up t ~site ~payload ~lost:None;
  if Sink.enabled t.sink then
    Sink.emit t.sink
      {
        Event.time = t.time;
        kind = Event.Message { dir = Event.Up; site; payload; bytes };
      }

let send_down t ~site ~payload =
  check_site t site;
  let bytes = Wire.message ~payload in
  t.bytes_down <- t.bytes_down + bytes;
  t.messages_down <- t.messages_down + 1;
  t.per_site_down.(site) <- t.per_site_down.(site) + bytes;
  tap_down t ~site ~payload ~lost:None;
  check_ledger t;
  if Sink.enabled t.sink then
    Sink.emit t.sink
      {
        Event.time = t.time;
        kind = Event.Message { dir = Event.Down; site; payload; bytes };
      }

let broadcast_down t ~except ~payload =
  let bytes = Wire.message ~payload in
  let recipients = t.k - (match except with Some _ -> 1 | None -> 0) in
  match t.model with
  | Unicast ->
    for site = 0 to t.k - 1 do
      if Some site <> except then begin
        t.bytes_down <- t.bytes_down + bytes;
        t.messages_down <- t.messages_down + 1;
        t.per_site_down.(site) <- t.per_site_down.(site) + bytes;
        tap_down t ~site ~payload ~lost:None
      end
    done;
    check_ledger t;
    if Sink.enabled t.sink && recipients > 0 then
      Sink.emit t.sink
        {
          Event.time = t.time;
          kind =
            Event.Broadcast
              {
                except;
                payload;
                bytes = recipients * bytes;
                messages = recipients;
                recipients;
              };
        }
  | Radio_broadcast ->
    (* One transmission reaches everyone; it occupies the shared medium
       once and is charged to no individual site. *)
    t.bytes_down <- t.bytes_down + bytes;
    t.messages_down <- t.messages_down + 1;
    t.medium <- t.medium + bytes;
    tap_medium t ~payload;
    check_ledger t;
    if Sink.enabled t.sink then
      Sink.emit t.sink
        {
          Event.time = t.time;
          kind =
            Event.Broadcast { except; payload; bytes; messages = 1; recipients };
        }

(* Fault-aware delivery.  With a disabled plan these degrade to the plain
   [send_*] above — same charges, same events, no randomness consumed —
   so fault-free runs stay byte-identical to the reliable simulator. *)

let transmit_up t ~site ~payload =
  if not (Faults.enabled t.faults) then begin
    send_up t ~site ~payload;
    Faults.Delivered 1
  end
  else begin
    check_site t site;
    let bytes = Wire.message ~payload in
    let outcome = Faults.roll t.faults ~site ~time:t.time in
    (* The attempt occupies the uplink whether or not it arrives. *)
    t.bytes_up <- t.bytes_up + bytes;
    t.messages_up <- t.messages_up + 1;
    t.per_site_up.(site) <- t.per_site_up.(site) + bytes;
    (match outcome with
    | Faults.Delivered n ->
      tap_up t ~site ~payload ~lost:None;
      emit t (Event.Message { dir = Event.Up; site; payload; bytes });
      if n > 1 then begin
        let copies = n - 1 in
        let extra = copies * bytes in
        t.bytes_up <- t.bytes_up + extra;
        t.messages_up <- t.messages_up + copies;
        t.per_site_up.(site) <- t.per_site_up.(site) + extra;
        t.dup_deliveries <- t.dup_deliveries + copies;
        for _ = 1 to copies do
          tap_up t ~site ~payload ~lost:None
        done;
        emit t (Event.Duplicate { dir = Event.Up; site; bytes = extra; copies })
      end
    | Faults.Lost loss ->
      note_loss t loss;
      tap_up t ~site ~payload ~lost:(Some loss);
      emit t (Event.Drop { dir = Event.Up; site; bytes; loss }));
    outcome
  end

let transmit_down t ~site ~payload =
  if not (Faults.enabled t.faults) then begin
    send_down t ~site ~payload;
    Faults.Delivered 1
  end
  else begin
    check_site t site;
    let bytes = Wire.message ~payload in
    let outcome = Faults.roll t.faults ~site ~time:t.time in
    t.bytes_down <- t.bytes_down + bytes;
    t.messages_down <- t.messages_down + 1;
    t.per_site_down.(site) <- t.per_site_down.(site) + bytes;
    (match outcome with
    | Faults.Delivered n ->
      tap_down t ~site ~payload ~lost:None;
      emit t (Event.Message { dir = Event.Down; site; payload; bytes });
      if n > 1 then begin
        let copies = n - 1 in
        let extra = copies * bytes in
        t.bytes_down <- t.bytes_down + extra;
        t.messages_down <- t.messages_down + copies;
        t.per_site_down.(site) <- t.per_site_down.(site) + extra;
        t.dup_deliveries <- t.dup_deliveries + copies;
        for _ = 1 to copies do
          tap_down t ~site ~payload ~lost:None
        done;
        emit t
          (Event.Duplicate { dir = Event.Down; site; bytes = extra; copies })
      end
    | Faults.Lost loss ->
      note_loss t loss;
      tap_down t ~site ~payload ~lost:(Some loss);
      emit t (Event.Drop { dir = Event.Down; site; bytes; loss }));
    check_ledger t;
    outcome
  end

let transmit_broadcast t ~except ~payload =
  if not (Faults.enabled t.faults) then begin
    broadcast_down t ~except ~payload;
    Array.init t.k (fun site ->
        if Some site = except then Faults.Delivered 0 else Faults.Delivered 1)
  end
  else begin
    match t.model with
    | Unicast ->
      (* Per-recipient links fail independently, so a faulted unicast
         broadcast decomposes into per-recipient transmissions (and its
         trace into per-recipient events the summary can reconcile). *)
      let out = Array.make t.k (Faults.Delivered 0) in
      for site = 0 to t.k - 1 do
        if Some site <> except then
          out.(site) <- transmit_down t ~site ~payload
      done;
      out
    | Radio_broadcast ->
      (* One transmission on the shared medium, charged once; what can
         still fail is each site's reception, which costs nothing extra. *)
      let bytes = Wire.message ~payload in
      let recipients = t.k - (match except with Some _ -> 1 | None -> 0) in
      t.bytes_down <- t.bytes_down + bytes;
      t.messages_down <- t.messages_down + 1;
      t.medium <- t.medium + bytes;
      tap_medium t ~payload;
      check_ledger t;
      emit t
        (Event.Broadcast { except; payload; bytes; messages = 1; recipients });
      Array.init t.k (fun site ->
          if Some site = except then Faults.Delivered 0
          else begin
            match Faults.roll t.faults ~site ~time:t.time with
            | Faults.Delivered _ -> Faults.Delivered 1
            | Faults.Lost loss ->
              note_loss t loss;
              emit t
                (Event.Drop { dir = Event.Down; site; bytes = 0; loss });
              Faults.Lost loss
          end)
  end

type delivery = { received : bool; acked : bool; attempts : int }

let arrived = function
  | Faults.Delivered n -> n > 0
  | Faults.Lost _ -> false

let reliable_up ?(max_retries = 5) t ~site ~payload =
  if not (Faults.enabled t.faults) then begin
    send_up t ~site ~payload;
    { received = true; acked = true; attempts = 1 }
  end
  else begin
    let bytes = Wire.message ~payload in
    let received = ref false in
    let acked = ref false in
    let attempts = ref 0 in
    let budget = 1 + max 0 max_retries in
    while (not !acked) && !attempts < budget do
      if !attempts > 0 then begin
        t.retry_count <- t.retry_count + 1;
        emit t
          (Event.Retry { dir = Event.Up; site; attempt = !attempts; bytes })
      end;
      incr attempts;
      if arrived (transmit_up t ~site ~payload) then begin
        received := true;
        if arrived (transmit_down t ~site ~payload:Wire.ack_bytes) then
          acked := true
      end
    done;
    { received = !received; acked = !acked; attempts = !attempts }
  end

let reliable_down ?(max_retries = 5) t ~site ~payload =
  if not (Faults.enabled t.faults) then begin
    send_down t ~site ~payload;
    { received = true; acked = true; attempts = 1 }
  end
  else begin
    let bytes = Wire.message ~payload in
    let received = ref false in
    let acked = ref false in
    let attempts = ref 0 in
    let budget = 1 + max 0 max_retries in
    while (not !acked) && !attempts < budget do
      if !attempts > 0 then begin
        t.retry_count <- t.retry_count + 1;
        emit t
          (Event.Retry { dir = Event.Down; site; attempt = !attempts; bytes })
      end;
      incr attempts;
      if arrived (transmit_down t ~site ~payload) then begin
        received := true;
        if arrived (transmit_up t ~site ~payload:Wire.ack_bytes) then
          acked := true
      end
    done;
    { received = !received; acked = !acked; attempts = !attempts }
  end

let bytes_up t = t.bytes_up
let bytes_down t = t.bytes_down
let total_bytes t = t.bytes_up + t.bytes_down
let messages_up t = t.messages_up
let messages_down t = t.messages_down
let total_messages t = t.messages_up + t.messages_down
let medium_bytes t = t.medium

let site_bytes_up t site =
  check_site t site;
  t.per_site_up.(site)

let site_bytes_down t site =
  check_site t site;
  t.per_site_down.(site)

let link_drops t = t.link_drops
let corrupt_drops t = t.corrupt_drops
let crash_drops t = t.crash_drops
let drops t = t.link_drops + t.corrupt_drops + t.crash_drops
let duplicate_deliveries t = t.dup_deliveries
let retries t = t.retry_count

let reset t =
  check_ledger t;
  t.bytes_up <- 0;
  t.bytes_down <- 0;
  t.messages_up <- 0;
  t.messages_down <- 0;
  Array.fill t.per_site_up 0 t.k 0;
  Array.fill t.per_site_down 0 t.k 0;
  t.medium <- 0;
  t.time <- 0;
  t.link_drops <- 0;
  t.corrupt_drops <- 0;
  t.crash_drops <- 0;
  t.dup_deliveries <- 0;
  t.retry_count <- 0
