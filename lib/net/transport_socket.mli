(** Unix-domain socket backend of {!Transport}: sites as real processes.

    The protocol engine stays in the coordinator process, and with it the
    {!Network.t} ledger — fault rolls, retry loops and byte charges run
    exactly as in the simulator, consuming the same randomness in the
    same order.  What this backend adds is a {e carrier}: a
    {!Network.tap} that turns every charged message copy into a real
    {!Wire.Frame} on a per-site socket, and a relay process per site
    ({!Site.run}, spawned via [wdmon site]) that validates, counts and
    answers those frames.  A fixed-seed run therefore produces the same
    estimates, the same ledger and the same trace as the simulator
    backend — the equivalence test pins this — while every accounted
    byte (modulo the documented header-size difference) demonstrably
    crosses a process boundary.

    How each ledger charge is realized:

    - down-direction message to a connected site: one [Deliver] frame
      written to its socket (payload zeros of the accounted length —
      the engine is centralized, so frames carry size, not state);
    - up-direction message: one [Request_up] control frame down (its
      4-byte payload names the requested length), answered by the relay
      with one [Up] frame of exactly that payload — so up-direction
      bytes are genuinely written by the site process;
    - {!Network.Radio_broadcast} medium charge: one [Deliver] frame per
      connected site; the first is accounted as the transmission, the
      rest as {!Transport.wire_stats.radio_copy_bytes};
    - a charge against a site inside a crash window (socket closed):
      nothing is written; the ledger bytes are recorded as
      [skipped_up]/[skipped_down] so the reconciliation stays exact.

    With a span recorder attached to the ledger ({!Network.set_spans})
    every frame written additionally carries a {!Wire.Frame.span}
    context block (trace id, span id, parent, wall stamps), so the
    causal trace crosses the process boundary.  The synchronous
    [Request_up]/[Up] exchange is timed end-to-end: the request ships
    the coordinator's send stamp, the relay echoes the ids back with its
    own receive/send stamps, and the coordinator emits a [request_up]
    round-trip span with a [relay.turnaround] child whose stamps were
    taken in the relay process — a true cross-process latency
    measurement.  Span blocks are wire overhead outside the byte ledger,
    reconciled via {!Transport.wire_stats.span_frames_up} /
    [span_frames_down].

    Crash windows are real disconnections: at window entry the
    coordinator closes the site's socket (the relay sees EOF and starts
    a reconnect loop); at window exit it re-accepts the relay's
    connection and counts a reconnect.  At {!Transport.close} every site
    receives [Finish] and answers with a [Stats] frame of its own
    counters, giving an independent, receiver-side measurement of the
    bytes that crossed each socket. *)

type site_report = Frame_io.site_report = {
  frames_received : int;  (** [Deliver] + [Request_up] frames seen *)
  bytes_received : int;  (** their total on-wire size *)
  frames_sent : int;  (** [Up] frames written *)
  bytes_sent : int;  (** their total on-wire size *)
}
(** A relay's own frame counters (handshake and teardown frames —
    [Hello]/[Welcome]/[Finish]/[Stats]/[Reject] — are not counted on
    either side, so these compare directly against the coordinator's
    {!Transport.wire_stats}). *)

(** The coordinator half: owns the listening socket, the ledger and the
    tap.  [set_time] doubles as the crash hook (window entry closes the
    site's socket, window exit re-accepts it); [close] finishes every
    site and collects its {!site_report}. *)
module Coordinator : sig
  include Transport.S

  val connect :
    ?cost_model:Network.cost_model ->
    ?timeout:float ->
    path:string ->
    sites:int ->
    unit ->
    t
  (** Bind a Unix-domain socket at [path] (unlinking any stale one),
      then block until all [sites] relays have completed the
      [Hello]/[Welcome] handshake.  A [Hello] with a wrong protocol
      version (or any malformed handshake) is answered with a [Reject]
      frame naming the {!Wire.Frame.error} and does not count toward
      [sites].  [timeout] (default 30s) bounds every blocking socket
      operation so a wedged relay fails the run instead of hanging it;
      in particular, a site that never connects (or stalls mid-handshake)
      raises [Failure] naming the missing site count once the timeout
      expires, never a raw [Unix_error].  Raises [Failure] on handshake
      or I/O errors. *)

  val pack : t -> Transport.t
  (** The packed transport protocol code consumes. *)

  val reports : t -> site_report option array
  (** Per-site relay reports, filled in by [close] (all [None] before);
      [None] afterwards marks a site that never answered [Finish]. *)

  val set_on_poll : t -> (unit -> unit) option -> unit
  (** Install a driver hook run on every [set_time] tick, after crash
      windows are handled — the natural place to poll a
      {!Metrics_http.t} endpoint from the synchronous event loop.  The
      hook runs once per protocol update, so it should throttle itself
      if its work is not trivially cheap. *)
end

(** The site half: a dumb carrier relay, run in its own process by
    [wdmon site].  It holds no protocol state — sketches, thresholds and
    estimates live in the coordinator — it answers the wire. *)
module Site : sig
  val run :
    ?connect_timeout:float ->
    ?timeout:float ->
    path:string ->
    site:int ->
    unit ->
    site_report
  (** Connect to the coordinator at [path] as site [site] (retrying on
      refusal until the wall-clock [connect_timeout] deadline, default
      10s — the relay may be started before the coordinator; the budget
      is time, never a fixed attempt count) and serve frames until [Finish],
      returning the final counters also sent in the [Stats] frame.  On
      EOF (the coordinator closed the socket: a crash window) the relay
      re-enters the connect loop and carries its counters across the
      reconnection.  Raises [Failure] on a [Reject] (e.g. version
      mismatch, reported with the peer's reason) or malformed frames. *)
end

val connect :
  ?cost_model:Network.cost_model ->
  ?timeout:float ->
  path:string ->
  sites:int ->
  unit ->
  Transport.t
(** [Coordinator.connect] followed by {!Coordinator.pack}. *)
