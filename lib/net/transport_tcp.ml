module F = Wire.Frame
module Span = Wd_obs.Span
open Frame_io

let frame_error what e = Frame_io.frame_error ~backend:"transport_tcp" what e

(* ------------------------------------------------------------------ *)
(* Coordinator                                                         *)
(* ------------------------------------------------------------------ *)

(* One relay connection carrying a contiguous range of sites.  Down-
   direction frames accumulate in [buf] as complete inner frames and
   leave in one batch-envelope write per flush. *)
type conn = {
  fd : Unix.file_descr;
  first : int;
  count : int;
  buf : Buffer.t;
  mutable pending_inner : int;
  mutable report : site_report option;
}

type coord = {
  net : Network.t;
  timeout : float;
  flush_bytes : int;
  listen_fd : Unix.file_descr;
  port : int;
  evloop : Evloop.t;
  mutable conns : conn list; (* accept order *)
  site_conn : conn option array;
  down : bool array;
  mutable frames_up : int;
  mutable frames_down : int;
  mutable wire_bytes_up : int;
  mutable wire_bytes_down : int;
  mutable control_frames : int;
  mutable control_bytes : int;
  mutable radio_copy_bytes : int;
  mutable skipped_up : int;
  mutable skipped_down : int;
  mutable reconnects : int;
  mutable span_frames_up : int;
  mutable span_frames_down : int;
  mutable batch_envelopes : int;
  mutable batch_inner_frames : int;
  mutable on_poll : (unit -> unit) option;
  mutable closed : bool;
}

let sites_of t = Array.length t.site_conn

(* Drain a connection's buffered inner frames as one batch envelope in a
   single write — the writev-style syscall per flush. *)
let flush_conn t conn =
  if conn.pending_inner > 0 then begin
    let len = Buffer.length conn.buf in
    let out = Bytes.create (F.header_bytes + len) in
    F.encode_batch_header out ~pos:0 ~count:conn.pending_inner ~length:len;
    Buffer.blit conn.buf 0 out F.header_bytes len;
    write_all conn.fd out 0 (Bytes.length out);
    t.batch_envelopes <- t.batch_envelopes + 1;
    t.batch_inner_frames <- t.batch_inner_frames + conn.pending_inner;
    Buffer.clear conn.buf;
    conn.pending_inner <- 0
  end

(* Append one Deliver inner frame (span-stamped when a recorder is on
   the ledger) to the connection buffer; flushing happens on high water,
   before any Request_up on the same connection, and at close. *)
let buffer_deliver t conn ~site ~payload =
  (match Network.spans t.net with
  | None -> Buffer.add_bytes conn.buf (frame_buf ~kind:F.Deliver ~site ~payload_len:payload)
  | Some r ->
    let t0 = Span.now r in
    let span =
      {
        F.trace_id = Span.trace_id r;
        span_id = Span.current_parent r;
        parent_id = Span.root_parent;
        t1_ns = t0;
        t2_ns = 0L;
      }
    in
    let buf = spanned_buf ~kind:F.Deliver ~site ~payload_len:payload ~span in
    Span.observe_ns r ~name:"frame.encode" (Int64.sub (Span.now r) t0);
    Buffer.add_bytes conn.buf buf;
    t.span_frames_down <- t.span_frames_down + 1);
  conn.pending_inner <- conn.pending_inner + 1;
  if Buffer.length conn.buf >= t.flush_bytes then flush_conn t conn

let conn_of_site t site =
  match t.site_conn.(site) with
  | Some conn -> conn
  | None -> failwith "transport_tcp: site has no connection"

let deliver t ~site ~payload =
  if t.down.(site) then t.skipped_down <- t.skipped_down + Wire.message ~payload
  else begin
    buffer_deliver t (conn_of_site t site) ~site ~payload;
    t.frames_down <- t.frames_down + 1;
    t.wire_bytes_down <- t.wire_bytes_down + F.bytes ~payload
  end

let medium_broadcast t ~payload =
  let wrote = ref 0 in
  for site = 0 to sites_of t - 1 do
    if not t.down.(site) then begin
      buffer_deliver t (conn_of_site t site) ~site ~payload;
      incr wrote;
      if !wrote = 1 then begin
        t.frames_down <- t.frames_down + 1;
        t.wire_bytes_down <- t.wire_bytes_down + F.bytes ~payload
      end
      else t.radio_copy_bytes <- t.radio_copy_bytes + F.bytes ~payload
    end
  done;
  if !wrote = 0 then t.skipped_down <- t.skipped_down + Wire.message ~payload

(* Synchronous Request_up -> Up round trip, multiplexed: the connection
   is flushed first so TCP ordering guarantees the relay has consumed
   every buffered Deliver before it answers, and the reply is therefore
   the next frame on this connection.  Span plumbing is identical to the
   socket backend: request ships context + send stamp, the relay echoes
   ids with its receive/send stamps, two spans come out. *)
let request_up t ~site ~payload =
  if t.down.(site) then t.skipped_up <- t.skipped_up + Wire.message ~payload
  else begin
    let conn = conn_of_site t site in
    flush_conn t conn;
    let fd = conn.fd in
    let spans = Network.spans t.net in
    let pending =
      match spans with
      | None ->
        let buf = frame_buf ~kind:F.Request_up ~site ~payload_len:4 in
        Bytes.set_int32_le buf F.header_bytes (Int32.of_int payload);
        write_all fd buf 0 (Bytes.length buf);
        None
      | Some r ->
        let parent = Span.current_parent r in
        let rtt_id = Span.fresh_id r in
        let t0 = Span.now r in
        let span =
          {
            F.trace_id = Span.trace_id r;
            span_id = rtt_id;
            parent_id = parent;
            t1_ns = t0;
            t2_ns = 0L;
          }
        in
        let buf = spanned_buf ~kind:F.Request_up ~site ~payload_len:4 ~span in
        Bytes.set_int32_le buf
          (F.header_bytes + F.span_bytes)
          (Int32.of_int payload);
        Span.observe_ns r ~name:"frame.encode" (Int64.sub (Span.now r) t0);
        write_all fd buf 0 (Bytes.length buf);
        t.span_frames_down <- t.span_frames_down + 1;
        Some (r, parent, rtt_id, t0)
    in
    t.control_frames <- t.control_frames + 1;
    t.control_bytes <- t.control_bytes + F.bytes ~payload:4;
    let deadline = Unix.gettimeofday () +. t.timeout in
    if not (Evloop.await_readable fd ~deadline) then
      failwith
        (Printf.sprintf
           "transport_tcp: timed out after %gs waiting for site %d's up frame"
           t.timeout site);
    match read_frame ?spans fd with
    | exception End_of_file ->
      failwith "transport_tcp: relay closed connection mid-exchange"
    | Error e -> frame_error "reading up frame" e
    | Ok (h, relay_span, _)
      when h.F.kind = F.Up && h.F.site = site && h.F.length = payload ->
      t.frames_up <- t.frames_up + 1;
      t.wire_bytes_up <- t.wire_bytes_up + F.bytes ~payload;
      if h.F.has_span then t.span_frames_up <- t.span_frames_up + 1;
      (match pending with
      | None -> ()
      | Some (r, parent, rtt_id, t0) ->
        let t1 = Span.now r in
        let time = Network.time t.net in
        (match relay_span with
        | Some sp ->
          ignore
            (Span.finish r ~name:"relay.turnaround" ~site ~parent:rtt_id
               ~time ~start_ns:sp.F.t1_ns ~end_ns:sp.F.t2_ns ()
              : Span.ctx)
        | None -> ());
        ignore
          (Span.finish r ~name:"request_up" ~site ~parent ~span_id:rtt_id
             ~time ~start_ns:t0 ~end_ns:t1 ()
            : Span.ctx))
    | Ok (h, _, _) ->
      failwith
        (Printf.sprintf
           "transport_tcp: expected up(site=%d,len=%d), got %s(site=%d,len=%d)"
           site payload
           (F.kind_to_string h.F.kind)
           h.F.site h.F.length)
  end

(* Crash windows on a multiplexed connection are logical detaches: the
   socket stays open (it carries the relay's other sites), charges
   against a down site are recorded as skipped exactly like the socket
   backend's closed-socket case, and window exit counts a reconnect
   without socket churn.  The scan only runs when the plan can crash at
   all, so a clean k=1000 run pays nothing per tick. *)
let on_time t time =
  let plan = Network.faults t.net in
  if Faults.has_crashes plan then
    for site = 0 to sites_of t - 1 do
      let is_down = Faults.is_down plan ~site ~time in
      if is_down && not t.down.(site) then t.down.(site) <- true
      else if (not is_down) && t.down.(site) then begin
        t.down.(site) <- false;
        t.reconnects <- t.reconnects + 1
      end
    done;
  match t.on_poll with None -> () | Some f -> f ()

let install_tap t =
  Network.set_tap t.net
    (Some
       {
         Network.on_up = (fun ~site ~payload ~lost:_ -> request_up t ~site ~payload);
         on_down = (fun ~site ~payload ~lost:_ -> deliver t ~site ~payload);
         on_medium = (fun ~payload -> medium_broadcast t ~payload);
       })

let finish_conn t conn =
  (try
     flush_conn t conn;
     write_frame conn.fd ~kind:F.Finish ~site:conn.first ~payload_len:0;
     match read_frame conn.fd with
     | Ok (h, _, payload)
       when h.F.kind = F.Stats && h.F.length = stats_payload_len ->
       conn.report <- Some (decode_report payload)
     | _ | (exception End_of_file) -> ()
   with Unix.Unix_error _ -> ());
  Evloop.remove t.evloop conn.fd;
  try Unix.close conn.fd with Unix.Unix_error _ -> ()

let close t =
  if not t.closed then begin
    t.closed <- true;
    Network.set_tap t.net None;
    List.iter (finish_conn t) t.conns;
    try Unix.close t.listen_fd with Unix.Unix_error _ -> ()
  end

let wire_stats t =
  Some
    {
      Transport.frames_up = t.frames_up;
      frames_down = t.frames_down;
      wire_bytes_up = t.wire_bytes_up;
      wire_bytes_down = t.wire_bytes_down;
      control_frames = t.control_frames;
      control_bytes = t.control_bytes;
      radio_copy_bytes = t.radio_copy_bytes;
      skipped_up = t.skipped_up;
      skipped_down = t.skipped_down;
      reconnects = t.reconnects;
      span_frames_up = t.span_frames_up;
      span_frames_down = t.span_frames_down;
      batch_envelopes = t.batch_envelopes;
      batch_inner_frames = t.batch_inner_frames;
    }

module Backend = Transport.Of_carrier (struct
  type t = coord

  let name = "tcp"
  let ledger t = t.net
  let on_time = on_time
  let close = close
  let wire_stats = wire_stats
end)

(* Accept one connection and run the server half of the handshake: a
   ranged Hello (site field = first site, 4-byte payload = site count)
   answered with Welcome, or a Reject naming what was wrong — a peer
   speaking an unknown protocol version gets the typed
   [Version_mismatch] text back.  Returns [true] if a range was
   claimed. *)
let accept_handshake t ~claimed =
  let fd, _ = Unix.accept t.listen_fd in
  set_timeouts fd t.timeout;
  (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
  let refuse reason =
    reject fd reason;
    (try Unix.close fd with Unix.Unix_error _ -> ());
    false
  in
  match read_frame fd with
  | exception End_of_file ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    false
  | Error e -> refuse (F.error_to_string e)
  | Ok (h, _, _) when h.F.kind <> F.Hello ->
    refuse (Printf.sprintf "expected hello, got %s" (F.kind_to_string h.F.kind))
  | Ok (h, _, _) when h.F.length <> 4 ->
    refuse "expected ranged hello (4-byte site-count payload)"
  | Ok (h, _, payload) ->
    let first = h.F.site in
    let count = Int32.to_int (Bytes.get_int32_le payload 0) in
    let sites = sites_of t in
    if count < 1 || first < 0 || first + count > sites then
      refuse (Printf.sprintf "site range %d+%d out of range (%d sites)" first count sites)
    else begin
      let overlap = ref false in
      for site = first to first + count - 1 do
        if claimed.(site) then overlap := true
      done;
      if !overlap then
        refuse (Printf.sprintf "site range %d+%d overlaps an accepted relay" first count)
      else begin
        write_frame fd ~kind:F.Welcome ~site:first ~payload_len:0;
        let conn =
          {
            fd;
            first;
            count;
            buf = Buffer.create 4096;
            pending_inner = 0;
            report = None;
          }
        in
        t.conns <- t.conns @ [ conn ];
        Evloop.add t.evloop fd;
        for site = first to first + count - 1 do
          claimed.(site) <- true;
          t.site_conn.(site) <- Some conn
        done;
        true
      end
    end

module Coordinator = struct
  include Backend

  let connect ?cost_model ?(timeout = 30.) ?(flush_bytes = 8192)
      ?on_listening ~port ~sites () =
    ignore_sigpipe ();
    let listen_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    let port =
      try
        Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
        Unix.bind listen_fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
        Unix.listen listen_fd (sites + 8);
        Unix.setsockopt_float listen_fd Unix.SO_RCVTIMEO timeout;
        match Unix.getsockname listen_fd with
        | Unix.ADDR_INET (_, port) -> port
        | Unix.ADDR_UNIX _ -> assert false
      with e ->
        (try Unix.close listen_fd with Unix.Unix_error _ -> ());
        raise e
    in
    let t =
      {
        net = Network.create ?cost_model ~sites ();
        timeout;
        flush_bytes;
        listen_fd;
        port;
        evloop = Evloop.create ();
        conns = [];
        site_conn = Array.make sites None;
        down = Array.make sites false;
        frames_up = 0;
        frames_down = 0;
        wire_bytes_up = 0;
        wire_bytes_down = 0;
        control_frames = 0;
        control_bytes = 0;
        radio_copy_bytes = 0;
        skipped_up = 0;
        skipped_down = 0;
        reconnects = 0;
        span_frames_up = 0;
        span_frames_down = 0;
        batch_envelopes = 0;
        batch_inner_frames = 0;
        on_poll = None;
        closed = false;
      }
    in
    (* The bound port is known (0 requests an ephemeral one); tell the
       caller before blocking on accepts so it can spawn relays. *)
    (match on_listening with None -> () | Some f -> f port);
    (try
       (* One wall-clock deadline covers the whole accept phase. *)
       let deadline = Unix.gettimeofday () +. timeout in
       let claimed = Array.make sites false in
       let missing () =
         Array.fold_left (fun n c -> if c then n else n + 1) 0 claimed
       in
       let all () = Array.for_all Fun.id claimed in
       while not (all ()) do
         if not (Evloop.await_readable t.listen_fd ~deadline) then
           failwith
             (Printf.sprintf
                "tcp coordinator: timed out after %gs waiting for %d of %d \
                 site(s) to connect"
                timeout (missing ()) sites);
         ignore (accept_handshake t ~claimed : bool)
       done
     with e ->
       close t;
       raise e);
    install_tap t;
    t

  let pack c = Transport.Packed ((module Backend), c)
  let port c = c.port

  let reports c =
    List.map (fun conn -> (conn.first, conn.count, conn.report)) c.conns

  let set_on_poll c f = c.on_poll <- f
end

let connect ?cost_model ?timeout ?flush_bytes ?on_listening ~port ~sites () =
  Coordinator.pack
    (Coordinator.connect ?cost_model ?timeout ?flush_bytes ?on_listening ~port
       ~sites ())

(* ------------------------------------------------------------------ *)
(* Relay                                                               *)
(* ------------------------------------------------------------------ *)

module Relay = struct
  let connect_once ~host ~port () =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    let addr = Unix.ADDR_INET (Unix.inet_addr_of_string host, port) in
    match Unix.connect fd addr with
    | () -> Ok fd
    | exception
        (Unix.Unix_error
           ( ( Unix.ECONNREFUSED | Unix.ECONNRESET | Unix.ENOENT | Unix.EAGAIN
             | Unix.EINTR | Unix.ETIMEDOUT ),
             _,
             _ )
         as e) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error e
    | exception e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise e

  (* Deadline-based connect retry, mirroring the socket relay. *)
  let connect_retry ~deadline ~timeout ~host ~port =
    let rec go () =
      match connect_once ~host ~port () with
      | Ok fd ->
        set_timeouts fd timeout;
        (try Unix.setsockopt fd Unix.TCP_NODELAY true
         with Unix.Unix_error _ -> ());
        fd
      | Error _ when Unix.gettimeofday () < deadline ->
        Unix.sleepf 0.02;
        go ()
      | Error e -> raise e
    in
    go ()

  let handshake fd ~first_site ~count =
    let buf = frame_buf ~kind:F.Hello ~site:first_site ~payload_len:4 in
    Bytes.set_int32_le buf F.header_bytes (Int32.of_int count);
    write_all fd buf 0 (Bytes.length buf);
    match read_frame fd with
    | exception End_of_file ->
      failwith "transport_tcp: coordinator closed connection during handshake"
    | Error e -> frame_error "handshake" e
    | Ok (h, _, _) when h.F.kind = F.Welcome -> ()
    | Ok (h, _, payload) when h.F.kind = F.Reject ->
      failwith
        (Printf.sprintf "transport_tcp: rejected by coordinator: %s"
           (Bytes.to_string payload))
    | Ok (h, _, _) ->
      failwith
        (Printf.sprintf "transport_tcp: expected welcome, got %s"
           (F.kind_to_string h.F.kind))

  let run ?(connect_timeout = 10.) ?(timeout = 30.) ?(host = "127.0.0.1")
      ~port ~first_site ~count () =
    ignore_sigpipe ();
    let frames_received = ref 0 in
    let bytes_received = ref 0 in
    let frames_sent = ref 0 in
    let bytes_sent = ref 0 in
    let deadline = Unix.gettimeofday () +. connect_timeout in
    let fd = connect_retry ~deadline ~timeout ~host ~port in
    (try handshake fd ~first_site ~count
     with e ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       raise e);
    let report () =
      {
        frames_received = !frames_received;
        bytes_received = !bytes_received;
        frames_sent = !frames_sent;
        bytes_sent = !bytes_sent;
      }
    in
    let in_range site = site >= first_site && site < first_site + count in
    let count_deliver (h : F.header) =
      if h.F.kind <> F.Deliver then
        failwith
          (Printf.sprintf "transport_tcp: unexpected %s frame inside a batch"
             (F.kind_to_string h.F.kind));
      if not (in_range h.F.site) then
        failwith
          (Printf.sprintf "transport_tcp: deliver for site %d outside %d+%d"
             h.F.site first_site count);
      let span_extra = if h.F.has_span then F.span_bytes else 0 in
      incr frames_received;
      bytes_received := !bytes_received + F.bytes ~payload:h.F.length + span_extra
    in
    let answer_up (h : F.header) rspan payload recv_ns =
      if h.F.length <> 4 then
        failwith "transport_tcp: malformed request-up frame";
      let span_extra = if h.F.has_span then F.span_bytes else 0 in
      incr frames_received;
      bytes_received := !bytes_received + F.bytes ~payload:4 + span_extra;
      let wanted = Int32.to_int (Bytes.get_int32_le payload 0) in
      if wanted < 0 || wanted > F.max_payload then
        failwith "transport_tcp: bad requested up-payload size";
      let site = h.F.site in
      match rspan with
      | Some sp ->
        let reply =
          {
            F.trace_id = sp.F.trace_id;
            span_id = sp.F.span_id;
            parent_id = sp.F.parent_id;
            t1_ns = recv_ns;
            t2_ns = Clock.ns ();
          }
        in
        let buf = spanned_buf ~kind:F.Up ~site ~payload_len:wanted ~span:reply in
        write_all fd buf 0 (Bytes.length buf);
        incr frames_sent;
        bytes_sent := !bytes_sent + F.bytes ~payload:wanted + F.span_bytes
      | None ->
        write_frame fd ~kind:F.Up ~site ~payload_len:wanted;
        incr frames_sent;
        bytes_sent := !bytes_sent + F.bytes ~payload:wanted
    in
    let finished = ref false in
    while not !finished do
      (* The relay's event loop: block (deadline-bounded) until the
         multiplexed connection is readable, then drain one frame. *)
      if
        not
          (Evloop.await_readable fd
             ~deadline:(Unix.gettimeofday () +. timeout))
      then failwith "transport_tcp: timed out waiting for coordinator";
      match read_frame fd with
      | exception End_of_file ->
        failwith "transport_tcp: coordinator closed connection mid-run"
      | Error e -> frame_error "reading frame" e
      | Ok (h, rspan, payload) -> (
        let recv_ns = if h.F.has_span then Clock.ns () else 0L in
        match h.F.kind with
        | F.Batch -> (
          (* The payload is the inner region; the envelope's site field
             is the announced inner-frame count.  The envelope header is
             real received traffic on top of the inner frames' own
             stand-alone accounting. *)
          match F.decode_batch payload ~count:h.F.site with
          | Error e -> frame_error "decoding batch envelope" e
          | Ok inners ->
            bytes_received := !bytes_received + F.header_bytes;
            List.iter (fun (ih, _, _) -> count_deliver ih) inners)
        | F.Deliver -> count_deliver h
        | F.Request_up -> answer_up h rspan payload recv_ns
        | F.Finish ->
          Frame_io.send_stats fd ~site:first_site (report ());
          (try Unix.close fd with Unix.Unix_error _ -> ());
          finished := true
        | F.Reject ->
          failwith
            (Printf.sprintf "transport_tcp: rejected by coordinator: %s"
               (Bytes.to_string payload))
        | F.Hello | F.Welcome | F.Up | F.Stats ->
          failwith
            (Printf.sprintf "transport_tcp: unexpected %s frame"
               (F.kind_to_string h.F.kind)))
    done;
    report ()
end
