module F = Wire.Frame

type site_report = {
  frames_received : int;
  bytes_received : int;
  frames_sent : int;
  bytes_sent : int;
}

let ignore_sigpipe () =
  (* A peer that died mid-write must surface as EPIPE, not kill us. *)
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  with Invalid_argument _ -> ()

let rec write_all fd buf pos len =
  if len > 0 then begin
    let n = Unix.write fd buf pos len in
    write_all fd buf (pos + n) (len - n)
  end

let rec read_exact fd buf pos len =
  if len > 0 then begin
    let n = Unix.read fd buf pos len in
    if n = 0 then raise End_of_file;
    read_exact fd buf (pos + n) (len - n)
  end

(* A frame as one buffer: header + zeroed payload the caller may poke. *)
let frame_buf ~kind ~site ~payload_len =
  let buf = Bytes.make (F.header_bytes + payload_len) '\000' in
  F.encode_header buf ~pos:0 ~kind ~site ~length:payload_len;
  buf

let write_frame fd ~kind ~site ~payload_len =
  let buf = frame_buf ~kind ~site ~payload_len in
  write_all fd buf 0 (Bytes.length buf)

(* Like [frame_buf], but a version-2 spanned frame: header with the span
   flag set, then the 40-byte span context block, then the payload.  The
   header's length field still counts only the payload. *)
let spanned_buf ~kind ~site ~payload_len ~span =
  let buf = Bytes.make (F.header_bytes + F.span_bytes + payload_len) '\000' in
  F.encode_header_spanned buf ~pos:0 ~kind ~site ~length:payload_len;
  F.encode_span buf ~pos:F.header_bytes span;
  buf

(* Read one frame: header, span context block when the header announces
   one, payload.  Consuming the span block here is what keeps the stream
   in sync whether or not the peer stamps its frames.  [spans] only adds
   a [frame.decode] histogram stamp; decoding is identical without it. *)
let read_frame ?spans fd =
  let module Span = Wd_obs.Span in
  let hdr = Bytes.create F.header_bytes in
  read_exact fd hdr 0 F.header_bytes;
  let decoded =
    match spans with
    | None -> F.decode_header hdr ~pos:0
    | Some r ->
      let t0 = Span.now r in
      let d = F.decode_header hdr ~pos:0 in
      Span.observe_ns r ~name:"frame.decode" (Int64.sub (Span.now r) t0);
      d
  in
  match decoded with
  | Error e -> Error e
  | Ok h ->
    let span =
      if not h.F.has_span then None
      else begin
        let sbuf = Bytes.create F.span_bytes in
        read_exact fd sbuf 0 F.span_bytes;
        match F.decode_span sbuf ~pos:0 with
        | Ok s -> Some s
        | Error _ -> None (* unreachable: the buffer is exactly span_bytes *)
      end
    in
    let payload = Bytes.create h.F.length in
    read_exact fd payload 0 h.F.length;
    Ok (h, span, payload)

let frame_error ~backend what e =
  failwith (Printf.sprintf "%s: %s: %s" backend what (F.error_to_string e))

let set_timeouts fd timeout =
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout;
  Unix.setsockopt_float fd Unix.SO_SNDTIMEO timeout

let reject fd reason =
  let payload_len = String.length reason in
  let buf = frame_buf ~kind:F.Reject ~site:0 ~payload_len in
  Bytes.blit_string reason 0 buf F.header_bytes payload_len;
  (try write_all fd buf 0 (Bytes.length buf) with Unix.Unix_error _ -> ())

let stats_payload_len = 32

let send_stats fd ~site report =
  let buf = frame_buf ~kind:F.Stats ~site ~payload_len:stats_payload_len in
  let p i v = Bytes.set_int64_le buf (F.header_bytes + i) (Int64.of_int v) in
  p 0 report.frames_received;
  p 8 report.bytes_received;
  p 16 report.frames_sent;
  p 24 report.bytes_sent;
  write_all fd buf 0 (Bytes.length buf)

let decode_report payload =
  let g i = Int64.to_int (Bytes.get_int64_le payload i) in
  {
    frames_received = g 0;
    bytes_received = g 8;
    frames_sent = g 16;
    bytes_sent = g 24;
  }
