type buf = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = { mutable buf : buf; mutable used : int }

let make_buf n : buf =
  let b = Bigarray.Array1.create Bigarray.int Bigarray.c_layout n in
  Bigarray.Array1.fill b 0;
  b

let create ?(capacity = 1024) () =
  if capacity < 1 then invalid_arg "Arena.create: capacity must be >= 1";
  { buf = make_buf capacity; used = 0 }

let alloc t n =
  if n < 0 then invalid_arg "Arena.alloc: negative size";
  let cap = Bigarray.Array1.dim t.buf in
  if t.used + n > cap then begin
    let cap' = ref cap in
    while t.used + n > !cap' do
      cap' := !cap' * 2
    done;
    let b = make_buf !cap' in
    Bigarray.Array1.blit
      (Bigarray.Array1.sub t.buf 0 t.used)
      (Bigarray.Array1.sub b 0 t.used);
    t.buf <- b
  end;
  let off = t.used in
  t.used <- t.used + n;
  off

let used t = t.used
let capacity t = Bigarray.Array1.dim t.buf
let buf t = t.buf
let get t i = Bigarray.Array1.get t.buf i
let set t i x = Bigarray.Array1.set t.buf i x
let unsafe_get t i = Bigarray.Array1.unsafe_get t.buf i
let unsafe_set t i x = Bigarray.Array1.unsafe_set t.buf i x

let blit t ~src ~dst ~len =
  Bigarray.Array1.blit
    (Bigarray.Array1.sub t.buf src len)
    (Bigarray.Array1.sub t.buf dst len)
