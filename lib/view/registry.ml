module Dc = Wd_protocol.Dc_tracker
module Ds = Wd_protocol.Ds_tracker
module W = Wd_protocol.Window_tracker
module Tracker_intf = Wd_protocol.Tracker_intf
module Hh = Wd_aggregate.Distinct_hh.Tracked
module Yzh = Wd_protocol.Yz_hh_tracker
module Yzq = Wd_aggregate.Yz_quantile_tracker
module Transport = Wd_net.Transport
module Sink = Wd_obs.Sink
module Rng = Wd_hashing.Rng

(* Applicative functor application keeps [Dc_fm.t] path-equal to
   [Dc_tracker.Fm.t], so callers holding the standard instantiations can
   exchange trackers with the registry. *)
module Dc_fm = Dc.Fm
module Dc_bjkst = Dc.Make (Wd_sketch.Bjkst)
module Dc_hll = Dc.Make (Wd_sketch.Hyperloglog)
module Dc_fmc = Dc.Make (Wd_sketch.Fm_concentrated)
module Dc_fanout = Dc.Make (Fanout_sketch)

(* {!W} through the TRACKER surface: the adapter supplies the shared
   clock (the view's arrival index) that window trackers need and plain
   trackers don't carry. *)
module Window_view = struct
  type t = { w : W.t; mutable updates : int }

  let kind = "window"
  let algorithm_name t = W.algorithm_to_string (W.algorithm_of t.w)
  let sites _ = 1

  let observe t ~site v =
    W.observe t.w ~site ~time:t.updates v;
    t.updates <- t.updates + 1

  let observe_batch t ~sites ~items ~pos ~len =
    if Array.length sites <> Array.length items then
      invalid_arg "Window_view.observe_batch: sites/items length mismatch";
    if pos < 0 || len < 0 || pos + len > Array.length items then
      invalid_arg "Window_view.observe_batch: slice out of range";
    for j = pos to pos + len - 1 do
      observe t ~site:(Array.unsafe_get sites j) (Array.unsafe_get items j)
    done

  let estimate t = W.estimate t.w ~now:(max 0 (t.updates - 1))

  let site_send_threshold _ ~site:_ ~item:_ =
    invalid_arg "Window_view: window trackers expose no send threshold"

  let updates t = t.updates
  let sends t = W.sends t.w
  let lost_updates _ = 0
  let site_down_for _ _ = 0
  let set_sink _ _ = ()
  let network t = W.network t.w

  let transport _ =
    invalid_arg "Window_view: window trackers have no transport"
end

(* {!Hh} through the TRACKER surface: arrivals are {!Query.pack_pair}ed
   [(v, w)] keys; the scalar estimate is the current top degree. *)
module Hh_view = struct
  type t = { h : Hh.t; algorithm : Dc.algorithm; mutable updates : int }

  let kind = "hh"
  let algorithm_name t = Dc.algorithm_to_string t.algorithm
  let sites _ = 1

  let observe t ~site packed =
    Hh.observe t.h ~site ~v:(Query.unpack_v packed)
      ~w:(Query.unpack_w packed);
    t.updates <- t.updates + 1

  let observe_batch t ~sites ~items ~pos ~len =
    if Array.length sites <> Array.length items then
      invalid_arg "Hh_view.observe_batch: sites/items length mismatch";
    if pos < 0 || len < 0 || pos + len > Array.length items then
      invalid_arg "Hh_view.observe_batch: slice out of range";
    for j = pos to pos + len - 1 do
      observe t ~site:(Array.unsafe_get sites j) (Array.unsafe_get items j)
    done

  let estimate t = match Hh.top t.h ~k:1 with [] -> 0.0 | (_, d) :: _ -> d

  let site_send_threshold _ ~site:_ ~item:_ =
    invalid_arg "Hh_view: per-cell thresholds are not exposed"

  let updates t = t.updates
  let sends t = Hh.sends t.h
  let lost_updates _ = 0
  let site_down_for _ _ = 0
  let set_sink t sink = Hh.set_sink t.h sink
  let network t = Hh.network t.h
  let transport t = Hh.transport t.h
end

type backing =
  | B_dc_fm of Dc_fm.t
  | B_dc_bjkst of Dc_bjkst.t
  | B_dc_hll of Dc_hll.t
  | B_dc_fmc of Dc_fmc.t
  | B_dc_fanout of Dc_fanout.t
  | B_ds of Ds.t
  | B_hh of Hh_view.t
  | B_window of Window_view.t
  | B_yzhh of Yzh.t
  | B_yzq of Yzq.t

type view = {
  query : Query.t;
  vlabel : string;
  tracker : Tracker_intf.packed;
  backing : backing;
  accept : site:int -> int -> bool;
  rebase : int;
}

(* Fan-out routing plan.  [Scan] views are offered every arrival through
   their accept test; key-class views sharing a modulus are grouped into
   one residue-indexed dispatch table, so a thousand same-modulus views
   cost one [mod] per arrival, not a thousand accept calls. *)
type route =
  | Scan of view
  | Key_classes of { modulus : int; buckets : view array array }

type t = {
  view_arr : view array;
  routes : route array;
  nsites : int;
  plane : Fanout_sketch.plane option;
  mutable fed : int;
  mutable closed : bool;
}

let compile_selector ~sites sel =
  match sel with
  | Query.All -> ((fun ~site:_ _ -> true), 0, sites)
  | Query.Sites { first; count } ->
    if first < 0 || count < 1 || first + count > sites then
      invalid_arg
        (Printf.sprintf
           "Wd_view.Registry: sites=%d-%d outside the %d-site stream" first
           (first + count - 1) sites);
    let limit = first + count in
    ((fun ~site _ -> site >= first && site < limit), first, count)
  | Query.Key_mod { modulus; residue } ->
    if modulus < 1 || residue < 0 || residue >= modulus then
      invalid_arg
        (Printf.sprintf "Wd_view.Registry: mod=%d/%d is not a valid key class"
           modulus residue);
    ( (fun ~site:_ item ->
        let r = item mod modulus in
        (if r < 0 then r + modulus else r) = residue),
      0,
      sites )

let mle = Wd_sketch.Sketch_intf.Mle

(* Construct one view's tracker.  The primary routes the caller's
   transport/sink/shards; satellites get fresh simulator transports so
   their traffic is ledgered independently. *)
let compile ~cost_model ~item_batching ~plane ~default_window ~seed ~sites
    ~transport ~sink ~shards index (q : Query.t) =
  let vseed = Option.value q.Query.seed ~default:(seed + index) in
  let rng = Rng.create vseed in
  let primary = index = 0 in
  let transport = if primary then transport else None in
  let sink = if primary then sink else Sink.null in
  let shards = if primary then shards else 1 in
  let accept, rebase, vsites = compile_selector ~sites q.Query.selector in
  let backing =
    match q.Query.protocol with
    | Query.Dc algorithm ->
      let theta =
        (* EC ignores theta but the constructor validates it. *)
        if algorithm = Dc.EC then Float.max q.Query.theta 0.1
        else q.Query.theta
      in
      let alpha = q.Query.alpha and confidence = q.Query.confidence in
      (* Estimator choice is family state; Classic is every family's
         default, so it is applied only when the query deviates. *)
      (match q.Query.sketch with
      | Query.Fm ->
        let family = Wd_sketch.Fm.family ~rng ~accuracy:alpha ~confidence in
        let family =
          if q.Query.estimator = mle then Wd_sketch.Fm.with_estimator mle family
          else family
        in
        B_dc_fm
          (Dc_fm.create ~cost_model ?transport ~item_batching ~sink ~shards
             ~algorithm ~theta ~sites:vsites ~family ())
      | Query.Bjkst ->
        let family = Wd_sketch.Bjkst.family ~rng ~accuracy:alpha ~confidence in
        let family =
          if q.Query.estimator = mle then
            Wd_sketch.Bjkst.with_estimator mle family
          else family
        in
        B_dc_bjkst
          (Dc_bjkst.create ~cost_model ?transport ~item_batching ~sink ~shards
             ~algorithm ~theta ~sites:vsites ~family ())
      | Query.Hll ->
        let family =
          Wd_sketch.Hyperloglog.family ~rng ~accuracy:alpha ~confidence
        in
        let family =
          if q.Query.estimator = mle then
            Wd_sketch.Hyperloglog.with_estimator mle family
          else family
        in
        B_dc_hll
          (Dc_hll.create ~cost_model ?transport ~item_batching ~sink ~shards
             ~algorithm ~theta ~sites:vsites ~family ())
      | Query.Fmc ->
        let family =
          Wd_sketch.Fm_concentrated.family ~rng ~accuracy:alpha ~confidence
        in
        let family =
          if q.Query.estimator = mle then
            Wd_sketch.Fm_concentrated.with_estimator mle family
          else family
        in
        B_dc_fmc
          (Dc_fmc.create ~cost_model ?transport ~item_batching ~sink ~shards
             ~algorithm ~theta ~sites:vsites ~family ())
      | Query.Fanout ->
        let family =
          Fanout_sketch.family_on ~plane:(Lazy.force plane) ~accuracy:alpha
            ~confidence
        in
        let family =
          if q.Query.estimator = mle then
            Fanout_sketch.with_estimator mle family
          else family
        in
        B_dc_fanout
          (Dc_fanout.create ~cost_model ?transport ~item_batching ~sink
             ~shards ~algorithm ~theta ~sites:vsites ~family ()))
    | Query.Ds algorithm ->
      let theta =
        if algorithm = Ds.EDS then Float.max q.Query.theta 0.1
        else q.Query.theta
      in
      let family =
        Wd_sketch.Distinct_sampler.family ~rng ~threshold:q.Query.threshold
      in
      B_ds
        (Ds.create ~cost_model ?transport ~sink ~algorithm
           ~theta ~sites:vsites ~family ())
    | Query.Hh algorithm ->
      let family = Wd_aggregate.Fm_array.family ~rng q.Query.hh_config in
      let h =
        Hh.create ~cost_model ?transport ~item_batching ~algorithm
          ~theta:q.Query.theta ~sites:vsites ~family ()
      in
      if sink != Sink.null then Hh.set_sink h sink;
      B_hh { Hh_view.h; algorithm; updates = 0 }
    | Query.Yz_hh ->
      B_yzhh
        (Yzh.create ~cost_model ?transport ~sink ~epsilon:q.Query.alpha
           ~top_k:q.Query.topk ~sites:vsites ())
    | Query.Yz_q ->
      B_yzq
        (Yzq.create ~cost_model ?transport ~sink ~universe:q.Query.universe
           ~rng ~epsilon:q.Query.alpha ~sites:vsites ())
    | Query.Window algorithm ->
      let window =
        if q.Query.window > 0 then q.Query.window
        else
          match default_window with
          | Some w -> w
          | None ->
            invalid_arg
              "Wd_view.Registry: window query with window=0 needs \
               ~default_window"
      in
      let family =
        Wd_sketch.Fm_window.family ~rng ~accuracy:q.Query.alpha
          ~confidence:q.Query.confidence
      in
      B_window
        {
          Window_view.w =
            W.create ~cost_model ~algorithm ~theta:q.Query.theta ~window
              ~sites:vsites ~family ();
          updates = 0;
        }
  in
  let tracker =
    match backing with
    | B_dc_fm tr -> Dc_fm.generic tr
    | B_dc_bjkst tr -> Dc_bjkst.generic tr
    | B_dc_hll tr -> Dc_hll.generic tr
    | B_dc_fmc tr -> Dc_fmc.generic tr
    | B_dc_fanout tr -> Dc_fanout.generic tr
    | B_ds tr -> Ds.generic tr
    | B_hh hv -> Tracker_intf.Tracker ((module Hh_view), hv)
    | B_window wv -> Tracker_intf.Tracker ((module Window_view), wv)
    | B_yzhh tr -> Yzh.generic tr
    | B_yzq tr -> Yzq.generic tr
  in
  { query = q; vlabel = Query.label q; tracker; backing; accept; rebase }

(* Group same-modulus key-class views into residue dispatch tables.  A
   modulus is worth a table when it covers at least two views (a lone
   key-class view is cheaper as a scan) and the bucket array stays small
   relative to practical view counts. *)
let max_bucket_modulus = 1 lsl 22

let build_routes view_arr =
  let counts = Hashtbl.create 4 in
  Array.iter
    (fun v ->
      match v.query.Query.selector with
      | Query.Key_mod { modulus; _ } ->
        Hashtbl.replace counts modulus
          (1 + Option.value (Hashtbl.find_opt counts modulus) ~default:0)
      | _ -> ())
    view_arr;
  let grouped m =
    m <= max_bucket_modulus
    && match Hashtbl.find_opt counts m with Some n -> n > 1 | None -> false
  in
  let buckets = Hashtbl.create 4 in
  let routes = ref [] in
  Array.iter
    (fun v ->
      match v.query.Query.selector with
      | Query.Key_mod { modulus; residue } when grouped modulus ->
        let b =
          match Hashtbl.find_opt buckets modulus with
          | Some b -> b
          | None ->
            let b = Array.make modulus [] in
            Hashtbl.replace buckets modulus b;
            routes := `Group modulus :: !routes;
            b
        in
        b.(residue) <- v :: b.(residue)
      | _ -> routes := `Scan v :: !routes)
    view_arr;
  List.rev !routes
  |> List.map (function
       | `Scan v -> Scan v
       | `Group m ->
         let b = Hashtbl.find buckets m in
         Key_classes
           {
             modulus = m;
             buckets = Array.map (fun l -> Array.of_list (List.rev l)) b;
           })
  |> Array.of_list

let is_fanout (q : Query.t) =
  match q.Query.protocol with
  | Query.Dc _ -> q.Query.sketch = Query.Fanout
  | _ -> false

let create ?(cost_model = Wd_net.Network.Unicast) ?transport
    ?(item_batching = true) ?(sink = Sink.null) ?(shards = 1) ?plane_capacity
    ?default_window ~seed ~sites queries =
  if queries = [] then invalid_arg "Wd_view.Registry.create: no queries";
  if sites < 1 then invalid_arg "Wd_view.Registry.create: sites must be >= 1";
  if shards > 1 && List.exists is_fanout queries then
    invalid_arg
      "Wd_view.Registry.create: the fanout plane is single-writer; sharded \
       coordinators are not supported with fanout views";
  (match (shards > 1, queries) with
  | true, q :: _ when (match q.Query.protocol with Query.Dc _ -> false | _ -> true)
    ->
    invalid_arg
      "Wd_view.Registry.create: shards apply to a DC primary only"
  | _ -> ());
  (match (transport, queries) with
  | Some _, q :: _
    when (match q.Query.protocol with Query.Window _ -> true | _ -> false) ->
    invalid_arg
      "Wd_view.Registry.create: window trackers have no transport"
  | _ -> ());
  (* One shared hash plane for every fanout view, seeded independently of
     any view's family so adding views never perturbs the hash. *)
  let plane =
    lazy (Fanout_sketch.plane ?capacity:plane_capacity ~rng:(Rng.create seed) ())
  in
  let view_arr =
    Array.of_list queries
    |> Array.mapi
         (compile ~cost_model ~item_batching ~plane ~default_window ~seed
            ~sites ~transport ~sink ~shards)
  in
  let plane = if Lazy.is_val plane then Some (Lazy.force plane) else None in
  {
    view_arr;
    routes = build_routes view_arr;
    nsites = sites;
    plane;
    fed = 0;
    closed = false;
  }

let views t = Array.length t.view_arr
let sites t = t.nsites
let query t i = t.view_arr.(i).query
let label t i = t.view_arr.(i).vlabel
let view_tracker t i = t.view_arr.(i).tracker
let estimate t i = Tracker_intf.estimate t.view_arr.(i).tracker
let routed t i = Tracker_intf.updates t.view_arr.(i).tracker

let plane_words t =
  match t.plane with None -> 0 | Some p -> Fanout_sketch.plane_words p

let ds_tracker t i =
  match t.view_arr.(i).backing with B_ds tr -> Some tr | _ -> None

let hh_tracker t i =
  match t.view_arr.(i).backing with
  | B_hh hv -> Some hv.Hh_view.h
  | _ -> None

let window_tracker t i =
  match t.view_arr.(i).backing with
  | B_window wv -> Some wv.Window_view.w
  | _ -> None

let yzhh_tracker t i =
  match t.view_arr.(i).backing with B_yzhh tr -> Some tr | _ -> None

let yzq_tracker t i =
  match t.view_arr.(i).backing with B_yzq tr -> Some tr | _ -> None

(* The fan-out TRACKER: offer each arrival to every accepting view,
   item-major so consecutive fanout adds hit the plane's hash memo.
   Ledger-style accessors proxy the primary, whose transport and sink
   are the caller's. *)
module Fan = struct
  type nonrec t = t

  let kind = "view"

  let primary t = t.view_arr.(0).tracker
  let algorithm_name t = Tracker_intf.algorithm_name (primary t)
  let sites t = t.nsites

  let observe t ~site item =
    let rs = t.routes in
    for i = 0 to Array.length rs - 1 do
      match Array.unsafe_get rs i with
      | Scan v ->
        if v.accept ~site item then
          Tracker_intf.observe v.tracker ~site:(site - v.rebase) item
      | Key_classes { modulus; buckets } ->
        let r = item mod modulus in
        let r = if r < 0 then r + modulus else r in
        let vs = Array.unsafe_get buckets r in
        (* Key-class views keep the full site range (rebase 0). *)
        for k = 0 to Array.length vs - 1 do
          Tracker_intf.observe (Array.unsafe_get vs k).tracker ~site item
        done
    done;
    t.fed <- t.fed + 1

  let observe_batch t ~sites ~items ~pos ~len =
    if Array.length sites <> Array.length items then
      invalid_arg "Wd_view.Registry: sites/items length mismatch";
    if pos < 0 || len < 0 || pos + len > Array.length items then
      invalid_arg "Wd_view.Registry: slice out of range";
    for j = pos to pos + len - 1 do
      observe t
        ~site:(Array.unsafe_get sites j)
        (Array.unsafe_get items j)
    done

  let estimate t = Tracker_intf.estimate (primary t)

  let site_send_threshold t ~site ~item =
    Tracker_intf.site_send_threshold (primary t) ~site ~item

  let updates t = t.fed
  let sends t = Tracker_intf.sends (primary t)
  let lost_updates t = Tracker_intf.lost_updates (primary t)
  let site_down_for t s = Tracker_intf.site_down_for (primary t) s
  let set_sink t sink = Tracker_intf.set_sink (primary t) sink
  let network t = Tracker_intf.network (primary t)
  let transport t = Tracker_intf.transport (primary t)
end

let packed t =
  (* One whole-stream view is its tracker: drivers keep the tracker's
     own batched observe path, byte accounting and trace identity. *)
  if Array.length t.view_arr = 1 && t.view_arr.(0).query.Query.selector = All
  then t.view_arr.(0).tracker
  else Tracker_intf.Tracker ((module Fan), t)

let close_view v =
  (match v.backing with
  | B_dc_fm tr -> Dc_fm.close tr
  | B_dc_bjkst tr -> Dc_bjkst.close tr
  | B_dc_hll tr -> Dc_hll.close tr
  | B_dc_fmc tr -> Dc_fmc.close tr
  | B_dc_fanout tr -> Dc_fanout.close tr
  | B_ds _ | B_hh _ | B_window _ | B_yzhh _ | B_yzq _ -> ());
  match v.backing with
  | B_window _ -> ()
  | _ -> Transport.close (Tracker_intf.transport v.tracker)

let close t =
  if not t.closed then begin
    t.closed <- true;
    Array.iter close_view t.view_arr
  end
