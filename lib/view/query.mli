(** Declarative standing queries — the unit a registry compiles.

    A query names a protocol (which tracking algorithm), a sketch family
    and estimator, the accuracy/lag parameters, and a key selector that
    scopes the view to a slice of the site streams.  Queries are plain
    data: they can be built programmatically, parsed from the compact
    [family:alg:key=value,...] spec syntax the CLI takes
    ([--views FILE|SPEC]), and printed back.

    The parameter names follow the paper: [alpha] is the sketch-accuracy
    share of the error budget, [theta] the lag share, [confidence] is
    [1 - delta].  [threshold] is the distinct-sampler sample-size bound
    (DS protocols only); [window] the sliding-window width in updates
    (window protocol only, [0] = a quarter of the run). *)

type sketch = Fm | Bjkst | Hll | Fmc | Fanout

val sketch_to_string : sketch -> string
val sketch_of_string : string -> sketch option

type selector =
  | All  (** every arrival *)
  | Sites of { first : int; count : int }
      (** arrivals at sites [first .. first + count - 1]; the view's
          tracker runs with [count] sites and re-based site indices *)
  | Key_mod of { modulus : int; residue : int }
      (** arrivals whose item key is [residue (mod modulus)] — the
          "per object class" scoping *)

type protocol =
  | Dc of Wd_protocol.Dc_tracker.algorithm
  | Ds of Wd_protocol.Ds_tracker.algorithm
  | Hh of Wd_protocol.Dc_tracker.algorithm
  | Window of Wd_protocol.Window_tracker.algorithm
  | Yz_hh
      (** Yi–Zhang optimal frequency heavy hitters
          ({!Wd_protocol.Yz_hh_tracker}); [alpha] is its epsilon *)
  | Yz_q
      (** Yi–Zhang duplicate-resilient quantiles
          ({!Wd_aggregate.Yz_quantile_tracker}); [alpha] is its epsilon *)

type t = {
  name : string;  (** view label; [""] picks a [family-alg] default *)
  protocol : protocol;
  sketch : sketch;
  estimator : Wd_sketch.Sketch_intf.estimator;
  alpha : float;
  confidence : float;
  theta : float;
  threshold : int;  (** DS sampler threshold *)
  window : int;  (** window width in updates; [0] = a quarter of the run *)
  topk : int;  (** YZ-HH coordinator capacity floor / eval top-k *)
  universe : int;  (** YZ-quantile item domain (rounded up to 2^j) *)
  hh_config : Wd_aggregate.Fm_array.config;
  selector : selector;
  seed : int option;
      (** per-view hash seed; [None] derives one from the run seed and
          the view's position *)
}

val protocol_family : protocol -> string
(** ["dc"], ["ds"], ["hh"], ["window"], ["yzhh"] or ["yzq"]. *)

val protocol_algorithm : protocol -> string
(** The paper's algorithm name (["LS"], ["GCS"], …). *)

val label : t -> string
(** [name] if nonempty, else ["family-alg"] (lowercase). *)

(** {1 Constructors} *)

val dc :
  ?name:string ->
  ?sketch:sketch ->
  ?estimator:Wd_sketch.Sketch_intf.estimator ->
  ?confidence:float ->
  ?selector:selector ->
  ?seed:int ->
  theta:float ->
  alpha:float ->
  Wd_protocol.Dc_tracker.algorithm ->
  t

val ds :
  ?name:string ->
  ?selector:selector ->
  ?seed:int ->
  theta:float ->
  threshold:int ->
  Wd_protocol.Ds_tracker.algorithm ->
  t

val hh :
  ?name:string ->
  ?config:Wd_aggregate.Fm_array.config ->
  ?selector:selector ->
  ?seed:int ->
  theta:float ->
  Wd_protocol.Dc_tracker.algorithm ->
  t

val window :
  ?name:string ->
  ?confidence:float ->
  ?selector:selector ->
  ?seed:int ->
  ?window:int ->
  theta:float ->
  alpha:float ->
  Wd_protocol.Window_tracker.algorithm ->
  t

val yzhh :
  ?name:string ->
  ?selector:selector ->
  ?seed:int ->
  ?topk:int ->
  epsilon:float ->
  unit ->
  t

val yzq :
  ?name:string ->
  ?selector:selector ->
  ?seed:int ->
  ?universe:int ->
  epsilon:float ->
  unit ->
  t

(** {1 Spec syntax}

    [family:alg\[:key=value,key=value,...\]] — e.g.
    ["dc:ls:alpha=0.07,theta=0.03,sketch=fanout,mod=100/7"].  Keys:
    [name], [alpha], [delta], [theta], [sketch] (fm/bjkst/hll/fmc/
    fanout), [est] (classic/mle), [threshold], [window], [rows]/[cols]/
    [bitmaps] (HH cell array), [topk]/[universe] (the Yi–Zhang
    families, whose [alg] is always [yz]), [sites=A-B] (inclusive site
    range), [mod=M/R] (key class), [seed]. *)

val of_spec : string -> (t, string) result

val to_spec : t -> string
(** A spec string that {!of_spec} parses back to an equal query. *)

val of_file : string -> (t list, string) result
(** One spec per line; blank lines and [#] comments are skipped.
    Errors name the offending line. *)

(** {1 Pair packing}

    The HH protocol consumes [(v, w)] pairs; a registry routes them
    through the shared single-item stream by packing both halves into
    one key.  Requires [0 <= v, w < 2^31]. *)

val pack_pair : v:int -> w:int -> int
val unpack_v : int -> int
val unpack_w : int -> int
