(** The registry's shared-plane distinct sketch: mixed-tabulation PCSA
    with hash memoization and arena-allocated registers.

    Semantically this is {!Wd_sketch.Fm_concentrated} — one strong hash
    per item supplies the bucket (high 32 bits mod [m]) and the level
    (trailing zeros of the low 32 bits, capped at 32), estimates blend
    linear counting into the bias-corrected PCSA mean, and the MLE
    estimator rides on the same state.  Two representation changes make
    it the fan-out substrate for thousands of concurrent views:

    - {b One hash per item per plane.}  Every family built on the same
      {!plane} shares one mixed-tabulation hash, and the plane memoizes
      the last [(item, hash)] pair.  When a registry fans an item out to
      [N] subscribed views in sequence, the first [add] pays the full
      hash and the remaining [N - 1] hit the memo — the marginal cost of
      another view is a register check, not a rehash.
    - {b Arena registers.}  Each sketch's [m] registers are one native
      int apiece (levels cap at 32, so a register is a 33-bit bitmap) in
      the plane's {!Arena} — no per-sketch heap array, nothing for the
      GC to scan.

    Sketches are mergeable only within one family, and families are
    comparable only on one plane.  The memo makes a plane single-writer:
    do not interleave adds on one plane from multiple domains (the
    sharded coordinator's parallel merge engine is therefore off-limits
    to fanout-backed trackers; merges alone would be safe, but the
    registry rejects the combination outright). *)

type plane
(** One shared hash + memo + register arena. *)

val plane : ?capacity:int -> rng:Wd_hashing.Rng.t -> unit -> plane
(** [plane ~rng ()] draws the mixed-tabulation hash from [rng] and
    reserves [capacity] arena words (default 1024; the arena grows by
    doubling past it). *)

val plane_words : plane -> int
(** Register words allocated on the plane so far (across every family
    and sketch). *)

type family
type t

val name : string
(** ["fanout"]. *)

val family :
  rng:Wd_hashing.Rng.t -> accuracy:float -> confidence:float -> family
(** A self-contained family on a fresh private plane — the
    {!Wd_sketch.Sketch_intf.DISTINCT_SKETCH} constructor, for standalone
    use.  Sizing matches {!Wd_sketch.Fm_concentrated.family}. *)

val family_on : plane:plane -> accuracy:float -> confidence:float -> family
(** A family sharing [plane]'s hash, memo and arena — the registry's
    constructor.  Families on one plane may differ in [accuracy] (bucket
    count); they still hash items identically, so the memo serves all of
    them. *)

val family_custom : plane:plane -> buckets:int -> family
(** Explicit bucket count.  Requires [buckets >= 1]. *)

val family_of_params : alpha:float -> delta:float -> seed:int -> family
val create : family -> t
val of_params : alpha:float -> delta:float -> seed:int -> t

val with_estimator : Wd_sketch.Sketch_intf.estimator -> family -> family
val estimator : family -> Wd_sketch.Sketch_intf.estimator
val buckets : family -> int
val plane_of : family -> plane
val family_of : t -> family

val copy : t -> t
val add : t -> int -> bool
val add_batch : t -> int array -> unit
val merge_into : dst:t -> t -> unit
val estimate : t -> float
val size_bytes : t -> int
val delta_bytes : from:t -> t -> int
val equal : t -> t -> bool
val is_empty : t -> bool
