(** The continuous-view registry: many standing {!Query.t}s compiled onto
    one shared site stream, fed through a single {!Wd_protocol.Tracker_intf}
    surface.

    A registry holds an ordered list of views.  View [0] is the
    {e primary}: it receives the caller's transport, trace sink and shard
    engine, exactly as a standalone tracker would — a one-view registry
    over the whole stream ([selector = All]) {e is} its tracker,
    bit-for-bit ({!packed} returns the view's own tracker, so batching,
    byte accounting and trace events are untouched).  Satellite views run
    on private in-process simulator transports and a null sink.

    Each arrival is offered to every view whose {!Query.selector} accepts
    it; [Sites] views see re-based site indices and run a tracker sized
    to their slice.  [Key_mod] views sharing a modulus are routed through
    one residue-indexed dispatch table, so the per-arrival fan-out cost
    scales with the number of distinct moduli, not the number of views.  Views whose queries name the [Fanout] sketch share
    one {!Fanout_sketch.plane} — one mixed-tabulation hash evaluation per
    item serves every subscribed view, and their registers live in one
    arena.  The plane is single-writer, so a fanout view cannot be
    combined with a sharded coordinator ({!create} rejects
    [shards > 1] in that case). *)

type t

val create :
  ?cost_model:Wd_net.Network.cost_model ->
  ?transport:Wd_net.Transport.t ->
  ?item_batching:bool ->
  ?sink:Wd_obs.Sink.t ->
  ?shards:int ->
  ?plane_capacity:int ->
  ?default_window:int ->
  seed:int ->
  sites:int ->
  Query.t list ->
  t
(** [create ~seed ~sites queries] compiles every query into a running
    tracker.  A view's hash seed is [Query.seed] when set, else
    [seed + index] — so view [0] with no explicit seed reproduces a
    standalone run at [seed] exactly.  [transport], [sink] and [shards]
    apply to the primary only; [cost_model] and [item_batching] apply
    everywhere.  [default_window] resolves window queries with
    [window = 0] (required if any such query is present).
    [plane_capacity] presizes the shared fanout arena (in registers).

    Raises [Invalid_argument] if [queries] is empty, a [Sites] selector
    falls outside [0 .. sites - 1], [shards > 1] is combined with a
    fanout view or a non-DC primary, or [transport] is passed with a
    window primary (window trackers have no transport). *)

val views : t -> int
val sites : t -> int
val query : t -> int -> Query.t
val label : t -> int -> string

val packed : t -> Wd_protocol.Tracker_intf.packed
(** The feed surface a driver observes arrivals into.  With one view
    over the whole stream this is the view's own tracker (the legacy
    fast path); otherwise a fan-out tracker of [kind = "view"] whose
    estimate/ledger accessors proxy the primary. *)

val view_tracker : t -> int -> Wd_protocol.Tracker_intf.packed
(** One view's own tracker, for per-view estimates and byte ledgers.
    [Wd_protocol.Tracker_intf.transport] raises for window views. *)

val estimate : t -> int -> float
(** [estimate t i] is view [i]'s current answer (DC distinct estimate,
    DS sampler estimate, HH top-degree, windowed distinct count). *)

val routed : t -> int -> int
(** Arrivals view [i]'s selector has accepted so far (the view
    tracker's own update count). *)

val plane_words : t -> int
(** Registers allocated on the shared fanout plane ([0] without fanout
    views). *)

val ds_tracker : t -> int -> Wd_protocol.Ds_tracker.t option
(** The raw DS tracker behind view [i] ([None] for other protocols) —
    for sample/level introspection. *)

val hh_tracker : t -> int -> Wd_aggregate.Distinct_hh.Tracked.t option
val window_tracker : t -> int -> Wd_protocol.Window_tracker.t option
val yzhh_tracker : t -> int -> Wd_protocol.Yz_hh_tracker.t option
val yzq_tracker : t -> int -> Wd_aggregate.Yz_quantile_tracker.t option

val close : t -> unit
(** Close every view, primary first: publish deferred sharded merges,
    join worker domains, close transports.  Idempotent. *)
