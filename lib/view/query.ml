module Dc_t = Wd_protocol.Dc_tracker
module Ds_t = Wd_protocol.Ds_tracker
module W_t = Wd_protocol.Window_tracker

type sketch = Fm | Bjkst | Hll | Fmc | Fanout

let sketch_to_string = function
  | Fm -> "fm"
  | Bjkst -> "bjkst"
  | Hll -> "hll"
  | Fmc -> "fmc"
  | Fanout -> "fanout"

let sketch_of_string s =
  match String.lowercase_ascii s with
  | "fm" -> Some Fm
  | "bjkst" -> Some Bjkst
  | "hll" -> Some Hll
  | "fmc" -> Some Fmc
  | "fanout" -> Some Fanout
  | _ -> None

type selector =
  | All
  | Sites of { first : int; count : int }
  | Key_mod of { modulus : int; residue : int }

type protocol =
  | Dc of Dc_t.algorithm
  | Ds of Ds_t.algorithm
  | Hh of Dc_t.algorithm
  | Window of W_t.algorithm
  | Yz_hh
  | Yz_q

type t = {
  name : string;
  protocol : protocol;
  sketch : sketch;
  estimator : Wd_sketch.Sketch_intf.estimator;
  alpha : float;
  confidence : float;
  theta : float;
  threshold : int;
  window : int;
  topk : int;
  universe : int;
  hh_config : Wd_aggregate.Fm_array.config;
  selector : selector;
  seed : int option;
}

let protocol_family = function
  | Dc _ -> "dc"
  | Ds _ -> "ds"
  | Hh _ -> "hh"
  | Window _ -> "window"
  | Yz_hh -> "yzhh"
  | Yz_q -> "yzq"

let protocol_algorithm = function
  | Dc a | Hh a -> Dc_t.algorithm_to_string a
  | Ds a -> Ds_t.algorithm_to_string a
  | Window a -> W_t.algorithm_to_string a
  | Yz_hh | Yz_q -> "YZ"

let label q =
  if q.name <> "" then q.name
  else
    protocol_family q.protocol ^ "-"
    ^ String.lowercase_ascii (protocol_algorithm q.protocol)

let default_hh_config = { Wd_aggregate.Fm_array.rows = 3; cols = 500; bitmaps = 10 }

let default_universe = 1 lsl 20

let make ?(name = "") ?(sketch = Fm)
    ?(estimator = Wd_sketch.Sketch_intf.Classic) ?(confidence = 0.9)
    ?(selector = All) ?seed ?(threshold = 256) ?(window = 0) ?(topk = 20)
    ?(universe = default_universe) ?(hh_config = default_hh_config) ~theta
    ~alpha protocol =
  {
    name;
    protocol;
    sketch;
    estimator;
    alpha;
    confidence;
    theta;
    threshold;
    window;
    topk;
    universe;
    hh_config;
    selector;
    seed;
  }

let dc ?name ?sketch ?estimator ?confidence ?selector ?seed ~theta ~alpha
    algorithm =
  make ?name ?sketch ?estimator ?confidence ?selector ?seed ~theta ~alpha
    (Dc algorithm)

let ds ?name ?selector ?seed ~theta ~threshold algorithm =
  make ?name ?selector ?seed ~threshold ~theta ~alpha:0.1 (Ds algorithm)

let hh ?name ?config ?selector ?seed ~theta algorithm =
  make ?name ?hh_config:config ?selector ?seed ~theta ~alpha:0.1
    (Hh algorithm)

let window ?name ?confidence ?selector ?seed ?window:(w = 0) ~theta ~alpha
    algorithm =
  make ?name ?confidence ?selector ?seed ~window:w ~theta ~alpha
    (Window algorithm)

let yzhh ?name ?selector ?seed ?topk ~epsilon () =
  make ?name ?selector ?seed ?topk ~theta:0.03 ~alpha:epsilon Yz_hh

let yzq ?name ?selector ?seed ?universe ~epsilon () =
  make ?name ?selector ?seed ?universe ~theta:0.03 ~alpha:epsilon Yz_q

(* ------------------------------------------------------------------ *)
(* Spec syntax: family:alg[:key=value,...] *)

let window_algorithm_of_string s =
  match String.uppercase_ascii s with
  | "NS" -> Some W_t.NS
  | "SC" -> Some W_t.SC
  | "LS" -> Some W_t.LS
  | _ -> None

let ( let* ) = Result.bind

let parse_float key s =
  match float_of_string_opt s with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "%s: not a number: %S" key s)

let parse_int key s =
  match int_of_string_opt s with
  | Some i -> Ok i
  | None -> Error (Printf.sprintf "%s: not an integer: %S" key s)

(* [sites=A-B]: inclusive site range. *)
let parse_sites s =
  match String.split_on_char '-' s with
  | [ a; b ] -> (
    match (int_of_string_opt a, int_of_string_opt b) with
    | Some first, Some last when first >= 0 && last >= first ->
      Ok (Sites { first; count = last - first + 1 })
    | _ -> Error (Printf.sprintf "sites: bad range %S (want A-B)" s))
  | _ -> Error (Printf.sprintf "sites: bad range %S (want A-B)" s)

(* [mod=M/R]: key class R of M. *)
let parse_mod s =
  match String.split_on_char '/' s with
  | [ m; r ] -> (
    match (int_of_string_opt m, int_of_string_opt r) with
    | Some modulus, Some residue
      when modulus >= 1 && residue >= 0 && residue < modulus ->
      Ok (Key_mod { modulus; residue })
    | _ -> Error (Printf.sprintf "mod: bad class %S (want M/R, 0 <= R < M)" s))
  | _ -> Error (Printf.sprintf "mod: bad class %S (want M/R)" s)

let apply_key q key value =
  match key with
  | "name" -> Ok { q with name = value }
  | "alpha" ->
    let* v = parse_float key value in
    if v <= 0.0 || v >= 1.0 then Error "alpha: must be in (0,1)"
    else Ok { q with alpha = v }
  | "delta" ->
    let* v = parse_float key value in
    if v <= 0.0 || v >= 1.0 then Error "delta: must be in (0,1)"
    else Ok { q with confidence = 1.0 -. v }
  | "theta" ->
    let* v = parse_float key value in
    if v <= 0.0 then Error "theta: must be > 0" else Ok { q with theta = v }
  | "sketch" -> (
    match sketch_of_string value with
    | Some s -> Ok { q with sketch = s }
    | None -> Error (Printf.sprintf "sketch: unknown %S" value))
  | "est" -> (
    match String.lowercase_ascii value with
    | "classic" -> Ok { q with estimator = Wd_sketch.Sketch_intf.Classic }
    | "mle" -> Ok { q with estimator = Wd_sketch.Sketch_intf.Mle }
    | _ -> Error (Printf.sprintf "est: unknown %S (want classic|mle)" value))
  | "threshold" ->
    let* v = parse_int key value in
    if v < 1 then Error "threshold: must be >= 1"
    else Ok { q with threshold = v }
  | "window" ->
    let* v = parse_int key value in
    if v < 0 then Error "window: must be >= 0" else Ok { q with window = v }
  | "rows" ->
    let* v = parse_int key value in
    if v < 1 then Error "rows: must be >= 1"
    else Ok { q with hh_config = { q.hh_config with rows = v } }
  | "cols" ->
    let* v = parse_int key value in
    if v < 1 then Error "cols: must be >= 1"
    else Ok { q with hh_config = { q.hh_config with cols = v } }
  | "bitmaps" ->
    let* v = parse_int key value in
    if v < 1 then Error "bitmaps: must be >= 1"
    else Ok { q with hh_config = { q.hh_config with bitmaps = v } }
  | "topk" ->
    let* v = parse_int key value in
    if v < 1 then Error "topk: must be >= 1" else Ok { q with topk = v }
  | "universe" ->
    let* v = parse_int key value in
    if v < 2 then Error "universe: must be >= 2"
    else Ok { q with universe = v }
  | "sites" ->
    let* sel = parse_sites value in
    Ok { q with selector = sel }
  | "mod" ->
    let* sel = parse_mod value in
    Ok { q with selector = sel }
  | "seed" ->
    let* v = parse_int key value in
    Ok { q with seed = Some v }
  | _ -> Error (Printf.sprintf "unknown key %S" key)

let of_spec spec =
  let parts = String.split_on_char ':' (String.trim spec) in
  let* family, alg, opts =
    match parts with
    | [ f; a ] -> Ok (f, a, "")
    | [ f; a; o ] -> Ok (f, a, o)
    | _ -> Error (Printf.sprintf "bad spec %S (want family:alg[:options])" spec)
  in
  let* protocol =
    match (String.lowercase_ascii family, alg) with
    | "dc", a -> (
      match Dc_t.algorithm_of_string a with
      | Some alg -> Ok (Dc alg)
      | None -> Error (Printf.sprintf "dc: unknown algorithm %S" a))
    | "ds", a -> (
      match Ds_t.algorithm_of_string a with
      | Some alg -> Ok (Ds alg)
      | None -> Error (Printf.sprintf "ds: unknown algorithm %S" a))
    | "hh", a -> (
      match Dc_t.algorithm_of_string a with
      | Some alg when alg <> Dc_t.EC -> Ok (Hh alg)
      | Some _ -> Error "hh: EC has no heavy-hitter form"
      | None -> Error (Printf.sprintf "hh: unknown algorithm %S" a))
    | "window", a -> (
      match window_algorithm_of_string a with
      | Some alg -> Ok (Window alg)
      | None -> Error (Printf.sprintf "window: unknown algorithm %S" a))
    | "yzhh", a -> (
      match String.uppercase_ascii a with
      | "YZ" -> Ok Yz_hh
      | _ -> Error (Printf.sprintf "yzhh: unknown algorithm %S (want yz)" a))
    | "yzq", a -> (
      match String.uppercase_ascii a with
      | "YZ" -> Ok Yz_q
      | _ -> Error (Printf.sprintf "yzq: unknown algorithm %S (want yz)" a))
    | f, _ -> Error (Printf.sprintf "unknown protocol family %S" f)
  in
  (* Base defaults must match the constructors', so [to_spec] output
     (which omits fields a family ignores) parses back to an equal
     record. *)
  let alpha =
    match protocol with
    | Ds _ | Hh _ -> 0.1
    | Dc _ | Window _ -> 0.07
    | Yz_hh | Yz_q -> 0.05
  in
  let q = make ~theta:0.03 ~alpha protocol in
  if opts = "" then Ok q
  else
    List.fold_left
      (fun acc kv ->
        let* q = acc in
        match String.index_opt kv '=' with
        | Some i ->
          apply_key q
            (String.sub kv 0 i)
            (String.sub kv (i + 1) (String.length kv - i - 1))
        | None -> Error (Printf.sprintf "bad option %S (want key=value)" kv))
      (Ok q)
      (String.split_on_char ',' opts)

let to_spec q =
  let buf = Buffer.create 64 in
  Buffer.add_string buf (protocol_family q.protocol);
  Buffer.add_char buf ':';
  Buffer.add_string buf (String.lowercase_ascii (protocol_algorithm q.protocol));
  let opts = ref [] in
  let add fmt = Printf.ksprintf (fun s -> opts := s :: !opts) fmt in
  if q.name <> "" then add "name=%s" q.name;
  add "theta=%g" q.theta;
  (match q.protocol with
  | Dc _ | Window _ ->
    add "alpha=%g" q.alpha;
    add "delta=%g" (1.0 -. q.confidence)
  | Ds _ -> add "threshold=%d" q.threshold
  | Hh _ ->
    let c = q.hh_config in
    add "rows=%d" c.Wd_aggregate.Fm_array.rows;
    add "cols=%d" c.cols;
    add "bitmaps=%d" c.bitmaps
  | Yz_hh ->
    add "alpha=%g" q.alpha;
    add "topk=%d" q.topk
  | Yz_q ->
    add "alpha=%g" q.alpha;
    add "universe=%d" q.universe);
  (match q.protocol with
  | Dc _ ->
    add "sketch=%s" (sketch_to_string q.sketch);
    if q.estimator = Wd_sketch.Sketch_intf.Mle then add "est=mle"
  | Window _ -> if q.window > 0 then add "window=%d" q.window
  | Ds _ | Hh _ | Yz_hh | Yz_q -> ());
  (match q.selector with
  | All -> ()
  | Sites { first; count } -> add "sites=%d-%d" first (first + count - 1)
  | Key_mod { modulus; residue } -> add "mod=%d/%d" modulus residue);
  (match q.seed with None -> () | Some s -> add "seed=%d" s);
  (match List.rev !opts with
  | [] -> ()
  | opts ->
    Buffer.add_char buf ':';
    Buffer.add_string buf (String.concat "," opts));
  Buffer.contents buf

let of_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error e -> Error e
  | contents ->
    let lines = String.split_on_char '\n' contents in
    let rec go n acc = function
      | [] -> Ok (List.rev acc)
      | line :: rest ->
        let line = String.trim line in
        if line = "" || line.[0] = '#' then go (n + 1) acc rest
        else (
          match of_spec line with
          | Ok q -> go (n + 1) (q :: acc) rest
          | Error e -> Error (Printf.sprintf "%s:%d: %s" path n e))
    in
    go 1 [] lines

(* ------------------------------------------------------------------ *)
(* Pair packing for HH views over the shared single-item stream. *)

let pack_pair ~v ~w =
  if v < 0 || v >= 0x4000_0000 * 2 || w < 0 || w >= 0x4000_0000 * 2 then
    invalid_arg "Query.pack_pair: v and w must be in [0, 2^31)";
  (v lsl 31) lor w

let unpack_v packed = packed lsr 31
let unpack_w packed = packed land 0x7FFF_FFFF
