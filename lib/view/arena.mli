(** A flat bump allocator for sketch registers.

    Thousands of concurrent views would otherwise mean thousands of
    separately heap-allocated register arrays, each a pointer hop and a
    GC-scanned object.  The arena packs every register of every view
    into one [Bigarray] of unboxed native ints — a single malloc'd block
    the GC never scans — and hands out integer offsets instead of
    pointers.  Allocation is a bump; there is no free (views live as
    long as their registry).

    The backing buffer grows by doubling, so offsets are stable but the
    buffer identity is not: readers must go through {!get}/{!set} (or
    re-read {!buf}) rather than caching the bigarray across
    allocations. *)

type t

type buf = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

val create : ?capacity:int -> unit -> t
(** [create ()] is an empty arena with [capacity] words reserved
    (default 1024).  Requires [capacity >= 1]. *)

val alloc : t -> int -> int
(** [alloc t n] reserves [n] zero-initialized words and returns the
    offset of the first.  Grows the backing buffer (doubling) as
    needed.  Requires [n >= 0]. *)

val used : t -> int
(** Words allocated so far. *)

val capacity : t -> int
(** Words reserved in the current backing buffer. *)

val buf : t -> buf
(** The current backing buffer — invalidated by the next growing
    {!alloc}; use for tight loops over a region allocated earlier in
    the same phase, or re-read after any allocation. *)

val get : t -> int -> int
val set : t -> int -> int -> unit

val unsafe_get : t -> int -> int
val unsafe_set : t -> int -> int -> unit

val blit : t -> src:int -> dst:int -> len:int -> unit
(** [blit t ~src ~dst ~len] copies [len] words between two regions of
    the arena (the regions may not overlap). *)
