module Rng = Wd_hashing.Rng
module Mixed_tabulation = Wd_hashing.Mixed_tabulation
module Geometric = Wd_hashing.Geometric
module Estimators = Wd_sketch.Estimators
module Fm_bitmap = Wd_sketch.Fm_bitmap

type plane = {
  hash : Mixed_tabulation.t;
  arena : Arena.t;
  mutable memo_key : int;
  mutable memo_hash : int64;
  scratch : int array; (* shared MLE counts buffer, as in {!Fm} *)
}

let plane ?capacity ~rng () =
  let hash = Mixed_tabulation.create rng in
  (* Invariant: [memo_hash = hash memo_key], established here so the
     memo needs no validity flag or sentinel branch. *)
  {
    hash;
    arena = Arena.create ?capacity ();
    memo_key = min_int;
    memo_hash = Mixed_tabulation.hash hash min_int;
    scratch = Array.make 65 0;
  }

let plane_words p = Arena.used p.arena

type family = {
  plane : plane;
  m : int;
  estimator : Wd_sketch.Sketch_intf.estimator;
  frac_pow : float array; (* frac_pow.(r) = 2^(r/m), see Fm.pow2_mean *)
}

(* [off] indexes the family plane's arena: registers live at
   [off .. off + m - 1], one 33-bit level bitmap per bucket. *)
type t = { fam : family; off : int }

let name = "fanout"

let family_custom ~plane ~buckets =
  if buckets < 1 then
    invalid_arg "Fanout_sketch.family_custom: buckets must be >= 1";
  {
    plane;
    m = buckets;
    estimator = Wd_sketch.Sketch_intf.Classic;
    frac_pow =
      Array.init buckets (fun r ->
          2.0 ** (Float.of_int r /. Float.of_int buckets));
  }

let family_on ~plane ~accuracy ~confidence =
  if accuracy <= 0.0 || accuracy >= 1.0 then
    invalid_arg "Fanout_sketch.family: accuracy must be in (0,1)";
  if confidence <= 0.0 || confidence >= 1.0 then
    invalid_arg "Fanout_sketch.family: confidence must be in (0,1)";
  let delta = 1.0 -. confidence in
  family_custom ~plane
    ~buckets:(Mixed_tabulation.concentrated_buckets ~alpha:accuracy ~delta)

let family ~rng ~accuracy ~confidence =
  family_on ~plane:(plane ~rng ()) ~accuracy ~confidence

let with_estimator estimator fam = { fam with estimator }
let estimator fam = fam.estimator
let buckets fam = fam.m
let plane_of fam = fam.plane
let family_of t = t.fam

let create fam = { fam; off = Arena.alloc fam.plane.arena fam.m }

let copy t =
  let off = Arena.alloc t.fam.plane.arena t.fam.m in
  Arena.blit t.fam.plane.arena ~src:t.off ~dst:off ~len:t.fam.m;
  { t with off }

(* One memoized mixed-tabulation hash per item per plane: the first
   sketch to see an item pays the hash, every other sketch on the plane
   hits the memo.  Correct because the memo invariant
   [memo_hash = hash memo_key] holds from construction on. *)
let hash_item p v =
  if p.memo_key = v then p.memo_hash
  else begin
    let h = Mixed_tabulation.hash p.hash v in
    p.memo_key <- v;
    p.memo_hash <- h;
    h
  end

(* Bucket/level split identical to {!Wd_sketch.Fm_concentrated.coords}:
   bucket from the high 32 bits (mod m), level from the trailing zeros
   of the low 32 bits, capped at 32 — so a register needs 33 bits. *)
let add t v =
  let p = t.fam.plane in
  let h = hash_item p v in
  let j = Int64.to_int (Int64.shift_right_logical h 32) mod t.fam.m in
  let low = Int64.to_int h land 0xFFFFFFFF in
  let level = if low = 0 then 32 else Geometric.trailing_zeros_int low in
  let idx = t.off + j in
  let r = Arena.unsafe_get p.arena idx in
  let bit = 1 lsl level in
  if r land bit = 0 then begin
    Arena.unsafe_set p.arena idx (r lor bit);
    true
  end
  else false

(* Equal to folding [add] (change flags discarded); the memo makes the
   hoisting moot, so this is just the loop. *)
let add_batch t vs =
  for i = 0 to Array.length vs - 1 do
    ignore (add t (Array.unsafe_get vs i) : bool)
  done

let merge_into ~dst src =
  if dst.fam != src.fam then
    invalid_arg "Fanout_sketch.merge_into: sketches from different families";
  let arena = dst.fam.plane.arena in
  for j = 0 to dst.fam.m - 1 do
    let r =
      Arena.unsafe_get arena (dst.off + j)
      lor Arena.unsafe_get arena (src.off + j)
    in
    Arena.unsafe_set arena (dst.off + j) r
  done

(* Index of the least significant zero bit of a register: the number of
   trailing ones, i.e. the trailing zeros of the complement (the
   complement is never 0 — registers use 33 of the 63 bits). *)
let lowest_zero r = Geometric.trailing_zeros_int (lnot r)

let pow2_mean fam sum =
  Float.ldexp fam.frac_pow.(sum mod fam.m) (sum / fam.m)

let estimate t =
  let fam = t.fam in
  let arena = fam.plane.arena in
  let sum = ref 0 and empty = ref 0 in
  for j = 0 to fam.m - 1 do
    let r = Arena.unsafe_get arena (t.off + j) in
    sum := !sum + lowest_zero r;
    if r = 0 then incr empty
  done;
  let m = Float.of_int fam.m in
  let raw = m *. pow2_mean fam !sum /. Fm_bitmap.phi in
  let classic = Estimators.linear_blend ~m ~empty:!empty ~raw in
  match fam.estimator with
  | Wd_sketch.Sketch_intf.Classic -> classic
  | Wd_sketch.Sketch_intf.Mle ->
    let counts = fam.plane.scratch in
    Array.fill counts 0 65 0;
    for j = 0 to fam.m - 1 do
      let z = lowest_zero (Arena.unsafe_get arena (t.off + j)) in
      counts.(z) <- counts.(z) + 1
    done;
    m *. Estimators.fm ~counts ~init:(classic /. m)

let size_bytes t = 8 * t.fam.m

(* Each missing bit ships as a (bucket index, level) coordinate: 4
   bytes, as in {!Wd_sketch.Fm.delta_bytes}. *)
let delta_bytes ~from target =
  let arena = target.fam.plane.arena in
  let missing = ref 0 in
  for j = 0 to target.fam.m - 1 do
    let extra =
      Arena.unsafe_get arena (target.off + j)
      land lnot (Arena.unsafe_get arena (from.off + j))
    in
    let x = ref extra in
    while !x <> 0 do
      x := !x land (!x - 1);
      incr missing
    done
  done;
  4 * !missing

let equal a b =
  a.fam.m = b.fam.m
  && (let aa = a.fam.plane.arena and ba = b.fam.plane.arena in
      let ok = ref true in
      for j = 0 to a.fam.m - 1 do
        if Arena.unsafe_get aa (a.off + j) <> Arena.unsafe_get ba (b.off + j)
        then ok := false
      done;
      !ok)

let is_empty t =
  let arena = t.fam.plane.arena in
  let empty = ref true in
  for j = 0 to t.fam.m - 1 do
    if Arena.unsafe_get arena (t.off + j) <> 0 then empty := false
  done;
  !empty

(* The uniform (alpha, delta, seed) constructor pair. *)

let family_of_params ~alpha ~delta ~seed =
  if delta <= 0.0 || delta >= 1.0 then
    invalid_arg "Fanout_sketch.family_of_params: delta must be in (0,1)";
  family ~rng:(Rng.create seed) ~accuracy:alpha ~confidence:(1.0 -. delta)

let of_params ~alpha ~delta ~seed =
  create (family_of_params ~alpha ~delta ~seed)
