(** Count-Min sketch (Cormode & Muthukrishnan 2005): approximate
    {e frequency} counting.

    This is the standard, duplicate-{e sensitive} summary: it estimates
    how many times an item occurred, so repeated observations of the same
    event inflate its answer.  It is implemented here as the natural
    baseline for the paper's motivation — Section 6.2's distinct heavy
    hitters replace exactly these counters with FM sketches to become
    duplicate-resilient, and the [ablation_resilience] benchmark shows
    the two diverging on duplicated traffic.

    Guarantees: with [rows = ceil (ln (1/delta))] and
    [cols = ceil (e / eps)], a point query overestimates the true count
    by at most [eps * N] with probability [1 - delta] (never
    underestimates; [N] = stream length). *)

type t

val create : rng:Wd_hashing.Rng.t -> rows:int -> cols:int -> t
(** Requires [rows >= 1], [cols >= 1]. *)

val of_params : alpha:float -> delta:float -> seed:int -> t
(** Standard sizing under the uniform parameter names:
    [cols = ceil (e / alpha)], [rows = ceil (ln (1 / delta))], hashes
    from a fresh generator seeded with [seed].  A point query then
    overestimates by at most [alpha * N] with probability [1 - delta]. *)

val rows : t -> int
val cols : t -> int

val add : t -> ?count:int -> int -> unit
(** [add t v] records one (or [count]) occurrences.  [count >= 0]. *)

val query : t -> int -> int
(** Min-over-rows frequency estimate: always [>= ] the true count. *)

val total : t -> int
(** Number of occurrences recorded (the [N] of the error bound). *)

val merge_into : dst:t -> t -> unit
(** Cell-wise sum; both sketches must come from the same [create] seed
    dimensions (checked by dimension only — callers share the rng the
    same way sketch families are shared). *)

val size_bytes : t -> int
(** 8 bytes per counter. *)
