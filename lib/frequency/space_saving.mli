(** Space-Saving (Metwally, Agrawal & El Abbadi 2005): deterministic
    top-k {e frequent} items.

    Like {!Cm_sketch}, this is the classical duplicate-{e sensitive}
    notion of "heavy hitter": items that {e occur} most often, counting
    repetitions.  Maintains [capacity] monitored counters; an unmonitored
    arrival replaces the current minimum, inheriting its count (+1), so
    every estimate overestimates by at most [min_count <= N / capacity].

    Any item with true frequency above [N / capacity] is guaranteed to be
    monitored.  Used by the resilience benchmark as the frequency-based
    contender against the paper's distinct heavy hitters. *)

type t

val create : capacity:int -> t
(** Requires [capacity >= 1]. *)

val of_params : alpha:float -> t
(** [create ~capacity:(ceil (1 / alpha))]: sizes the structure so that
    [max_error <= alpha * total].  The structure is deterministic, so
    unlike the sketch constructors there is no [seed] and no failure
    probability.  Requires [0 < alpha <= 1]. *)

val capacity : t -> int

val add : t -> ?count:int -> int -> unit

val query : t -> int -> int option
(** Estimated count if the item is currently monitored. *)

val top : t -> k:int -> (int * int) list
(** The [k] monitored items with the largest estimated counts,
    descending. *)

val total : t -> int
val monitored : t -> int
(** Number of live counters ([<= capacity]). *)

val max_error : t -> int
(** Current worst-case overestimate: the minimum monitored count once
    the structure is full, 0 before. *)
