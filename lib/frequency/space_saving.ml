(* Counters in a hash table plus a lazy min-heap: counts only grow, so a
   popped heap entry whose recorded count is stale is re-pushed with the
   current count.  Amortized O(log capacity) per eviction. *)

type t = {
  cap : int;
  counts : (int, int) Hashtbl.t;
  heap : (int * int) array; (* (count snapshot, item); [0, hsize) live *)
  mutable hsize : int;
  mutable total : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Space_saving.create: capacity must be >= 1";
  {
    cap = capacity;
    counts = Hashtbl.create (2 * capacity);
    heap = Array.make (4 * capacity) (0, 0);
    hsize = 0;
    total = 0;
  }

let capacity t = t.cap

let swap t i j =
  let tmp = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    if fst t.heap.(p) > fst t.heap.(i) then begin
      swap t p i;
      sift_up t p
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.hsize && fst t.heap.(l) < fst t.heap.(!smallest) then smallest := l;
  if r < t.hsize && fst t.heap.(r) < fst t.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t entry =
  (* The heap holds at most one live + a few stale entries per item; it
     is sized 4x capacity and compacted when full. *)
  if t.hsize = Array.length t.heap then begin
    (* Compact: rebuild from the live table. *)
    t.hsize <- 0;
    Hashtbl.iter
      (fun v c ->
        t.heap.(t.hsize) <- (c, v);
        t.hsize <- t.hsize + 1)
      t.counts;
    for i = (t.hsize / 2) - 1 downto 0 do
      sift_down t i
    done
  end;
  t.heap.(t.hsize) <- entry;
  t.hsize <- t.hsize + 1;
  sift_up t (t.hsize - 1)

(* Pop the true minimum (skipping stale snapshots). *)
let rec pop_min t =
  assert (t.hsize > 0);
  let snapshot, v = t.heap.(0) in
  t.hsize <- t.hsize - 1;
  t.heap.(0) <- t.heap.(t.hsize);
  sift_down t 0;
  match Hashtbl.find_opt t.counts v with
  | Some c when c = snapshot -> (v, c)
  | Some c ->
    (* Stale: the item grew since this snapshot; re-queue and retry. *)
    push t (c, v);
    pop_min t
  | None -> pop_min t (* item already evicted under an older snapshot *)

let add t ?(count = 1) v =
  if count < 0 then invalid_arg "Space_saving.add: negative count";
  if count > 0 then begin
    t.total <- t.total + count;
    match Hashtbl.find_opt t.counts v with
    | Some c ->
      let c' = c + count in
      Hashtbl.replace t.counts v c';
      push t (c', v)
    | None ->
      if Hashtbl.length t.counts < t.cap then begin
        Hashtbl.replace t.counts v count;
        push t (count, v)
      end
      else begin
        (* Replace the minimum counter, inheriting its count. *)
        let evicted, min_count = pop_min t in
        Hashtbl.remove t.counts evicted;
        let c' = min_count + count in
        Hashtbl.replace t.counts v c';
        push t (c', v)
      end
  end

let query t v = Hashtbl.find_opt t.counts v

let top t ~k =
  Hashtbl.fold (fun v c acc -> (v, c) :: acc) t.counts []
  |> List.sort (fun (_, a) (_, b) -> compare b a)
  |> List.filteri (fun i _ -> i < k)

let total t = t.total

let monitored t = Hashtbl.length t.counts

let max_error t =
  if Hashtbl.length t.counts < t.cap then 0
  else Hashtbl.fold (fun _ c acc -> min acc c) t.counts max_int

(* Uniform constructor: capacity from the additive error target.  The
   structure is deterministic, so there is no seed and no failure
   probability — max_error <= alpha * total always holds. *)

let of_params ~alpha =
  if alpha <= 0.0 || alpha > 1.0 then
    invalid_arg "Space_saving.of_params: alpha must be in (0,1]";
  create ~capacity:(max 1 (int_of_float (Float.ceil (1.0 /. alpha))))
