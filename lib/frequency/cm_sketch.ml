module Rng = Wd_hashing.Rng
module Universal = Wd_hashing.Universal

type t = {
  rows : int;
  cols : int;
  hashes : Universal.t array;
  cells : int array; (* row-major *)
  mutable total : int;
}

let create ~rng ~rows ~cols =
  if rows < 1 || cols < 1 then
    invalid_arg "Cm_sketch.create: rows and cols must be >= 1";
  {
    rows;
    cols;
    hashes = Array.init rows (fun _ -> Universal.of_rng rng);
    cells = Array.make (rows * cols) 0;
    total = 0;
  }

let rows t = t.rows
let cols t = t.cols

let add t ?(count = 1) v =
  if count < 0 then invalid_arg "Cm_sketch.add: negative count";
  for row = 0 to t.rows - 1 do
    let col = Universal.to_range t.hashes.(row) ~buckets:t.cols v in
    let idx = (row * t.cols) + col in
    t.cells.(idx) <- t.cells.(idx) + count
  done;
  t.total <- t.total + count

let query t v =
  let best = ref max_int in
  for row = 0 to t.rows - 1 do
    let col = Universal.to_range t.hashes.(row) ~buckets:t.cols v in
    let c = t.cells.((row * t.cols) + col) in
    if c < !best then best := c
  done;
  !best

let total t = t.total

let merge_into ~dst src =
  if dst.rows <> src.rows || dst.cols <> src.cols then
    invalid_arg "Cm_sketch.merge_into: dimension mismatch";
  Array.iteri (fun i c -> dst.cells.(i) <- dst.cells.(i) + c) src.cells;
  dst.total <- dst.total + src.total

let size_bytes t = 8 * t.rows * t.cols

(* The uniform (alpha, delta, seed) constructor: alpha is the additive
   error fraction (eps of the classical bound), delta the failure
   probability. *)

let of_params ~alpha ~delta ~seed =
  if alpha <= 0.0 || alpha >= 1.0 then
    invalid_arg "Cm_sketch.of_params: alpha must be in (0,1)";
  if delta <= 0.0 || delta >= 1.0 then
    invalid_arg "Cm_sketch.of_params: delta must be in (0,1)";
  let cols = int_of_float (Float.ceil (Float.exp 1.0 /. alpha)) in
  let rows = max 1 (int_of_float (Float.ceil (Float.log (1.0 /. delta)))) in
  create ~rng:(Rng.create seed) ~rows ~cols
