(** Causal span recorder — the wall-clock half of the trace layer.

    A span is one timed operation (a message send, a coordinator
    broadcast, a cross-process request/reply, a tracker batch) stamped
    with monotonic wall-clock nanoseconds and linked to a parent span,
    so a distributed run reads as a latency tree rooted at the
    coordinator.  Finished spans are emitted as {!Event.Span} trace
    events and folded into a [wd_span_duration_ns] log2 histogram when a
    {!Metrics} registry is attached.

    Recorders are attached explicitly (e.g. [Network.set_spans]); with
    no recorder attached the instrumented code paths reduce to one
    [option] match, and no span ever reaches a trace — which is what
    keeps fixed-seed golden traces bit-identical.

    {b Clock discipline.}  The recorder does not read a clock itself:
    callers inject [clock : unit -> int64] returning wall-clock
    nanoseconds (conventionally Unix-epoch-based — see
    [Wd_net.Clock.ns]).  {!now} additionally clamps the reading to be
    monotone non-decreasing, so durations never go negative even if the
    underlying wall clock steps backwards.  Timestamps are comparable
    across processes on one host (same clock source), never across
    runs. *)

type ctx = { trace_id : int64; span_id : int64; parent_id : int64 }
(** A span identity as propagated across process boundaries (see
    [Wd_net.Wire.Frame] version 2). *)

val root_parent : int64
(** [0L] — the parent id of a root span. *)

type t
(** A recorder: run-scoped trace id, span-id allocator, clock, and the
    event emission target. *)

val create :
  ?trace_id:int64 ->
  ?metrics:Metrics.t ->
  clock:(unit -> int64) ->
  emit:(Event.t -> unit) ->
  unit ->
  t
(** [trace_id] defaults to [1L]; give each run its own (e.g. derived
    from the seed) when traces may be aggregated. *)

val trace_id : t -> int64
val set_metrics : t -> Metrics.t option -> unit
val metrics : t -> Metrics.t option

val fresh_id : t -> int64
(** Allocate the next span id (1-based; 0 means "no parent"). *)

val current_parent : t -> int64
(** The innermost span currently open (set by instrumented callers
    around nested work), or {!root_parent}.  Lets a lower layer parent
    its spans under the operation that triggered it without threading
    context through every signature. *)

val set_current_parent : t -> int64 -> unit
(** Callers restoring must save the previous value around the nested
    call. *)

val now : t -> int64
(** Current clock reading, clamped monotone non-decreasing. *)

val duration_hist : Metrics.t -> string -> Metrics.histogram
(** The [wd_span_duration_ns{span=name}] histogram (2^7 … 2^34 ns
    buckets) — the family both {!observe_ns} and the metrics sink's
    span handling feed. *)

val observe_ns : t -> name:string -> int64 -> unit
(** Feed a duration into the [wd_span_duration_ns{span=name}] histogram
    without emitting a trace event — for very high-volume stamps (frame
    encode/decode) where per-operation events would swamp the trace. *)

val finish :
  t ->
  name:string ->
  ?site:int ->
  ?parent:int64 ->
  ?span_id:int64 ->
  ?end_ns:int64 ->
  time:int ->
  start_ns:int64 ->
  unit ->
  ctx
(** Record one finished span as an {!Event.Span}.  Duration histograms
    for span {e events} are fed by the metrics sink when the event
    reaches it (so replayed traces produce the same histograms as live
    runs); {!observe_ns} exists only for stamps that never become
    events.  [span_id] defaults to a fresh id — pass one explicitly to
    report a span whose id was already shipped to a peer; [end_ns]
    defaults to {!now}; [time] is the logical update index. *)
