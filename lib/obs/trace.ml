open Event

let to_json (ev : Event.t) : Json.t =
  let fields =
    match ev.kind with
    | Run_meta { run_id; protocol; algorithm; sites; cost_model } ->
      [
        ("run", Json.Str run_id);
        ("protocol", Json.Str protocol);
        ("algorithm", Json.Str algorithm);
        ("sites", Json.Int sites);
        ("cost_model", Json.Str cost_model);
      ]
    | Message { dir; site; payload; bytes } ->
      [
        ("dir", Json.Str (direction_to_string dir));
        ("site", Json.Int site);
        ("payload", Json.Int payload);
        ("bytes", Json.Int bytes);
      ]
    | Broadcast { except; payload; bytes; messages; recipients } ->
      [
        ( "except",
          match except with Some s -> Json.Int s | None -> Json.Null );
        ("payload", Json.Int payload);
        ("bytes", Json.Int bytes);
        ("messages", Json.Int messages);
        ("recipients", Json.Int recipients);
      ]
    | Sketch_sent { site; bytes; items } ->
      [
        ("site", Json.Int site);
        ("bytes", Json.Int bytes);
        ("items", match items with Some n -> Json.Int n | None -> Json.Null);
      ]
    | Count_sent { site; item; count; delta } ->
      [
        ("site", Json.Int site);
        ("item", Json.Int item);
        ("count", Json.Int count);
        ("delta", Json.Int delta);
      ]
    | Threshold_crossed { site; estimate; threshold } ->
      [
        ("site", Json.Int site);
        ("estimate", Json.Float estimate);
        ("threshold", Json.Float threshold);
      ]
    | Estimate_update { previous; estimate } ->
      [ ("previous", Json.Float previous); ("estimate", Json.Float estimate) ]
    | Level_advance { previous; level } ->
      [ ("previous", Json.Int previous); ("level", Json.Int level) ]
    | Resync { site; bytes } ->
      [ ("site", Json.Int site); ("bytes", Json.Int bytes) ]
    | Drop { dir; site; bytes; loss } ->
      [
        ("dir", Json.Str (direction_to_string dir));
        ("site", Json.Int site);
        ("bytes", Json.Int bytes);
        ("loss", Json.Str (loss_to_string loss));
      ]
    | Duplicate { dir; site; bytes; copies } ->
      [
        ("dir", Json.Str (direction_to_string dir));
        ("site", Json.Int site);
        ("bytes", Json.Int bytes);
        ("copies", Json.Int copies);
      ]
    | Retry { dir; site; attempt; bytes } ->
      [
        ("dir", Json.Str (direction_to_string dir));
        ("site", Json.Int site);
        ("attempt", Json.Int attempt);
        ("bytes", Json.Int bytes);
      ]
    | Forward { dir; node; payload; bytes } ->
      [
        ("dir", Json.Str (direction_to_string dir));
        ("node", Json.Int node);
        ("payload", Json.Int payload);
        ("bytes", Json.Int bytes);
      ]
    | Crash { site } -> [ ("site", Json.Int site) ]
    | Recover { site; resync_bytes } ->
      [ ("site", Json.Int site); ("resync_bytes", Json.Int resync_bytes) ]
    | Span { name; site; trace_id; span_id; parent_id; start_ns; end_ns } ->
      [
        ("name", Json.Str name);
        ("site", match site with Some s -> Json.Int s | None -> Json.Null);
        (* Trace ids are opaque 64-bit tokens: hex strings in JSON so the
           top bit survives codecs that read numbers as doubles. *)
        ("trace", Json.Str (Printf.sprintf "%Lx" trace_id));
        ("span", Json.Int (Int64.to_int span_id));
        ("parent", Json.Int (Int64.to_int parent_id));
        ("start_ns", Json.Int (Int64.to_int start_ns));
        ("end_ns", Json.Int (Int64.to_int end_ns));
      ]
    | View_report { index; label; spec; estimate; routed; bytes } ->
      [
        ("index", Json.Int index);
        ("label", Json.Str label);
        ("spec", Json.Str spec);
        ("estimate", Json.Float estimate);
        ("routed", Json.Int routed);
        ("bytes", Json.Int bytes);
      ]
  in
  Json.Obj
    (("t", Json.Int ev.time) :: ("ev", Json.Str (kind_name ev.kind)) :: fields)

(* Field extraction for decoding, raising on malformed input so the
   per-kind decoders stay flat; [of_json] catches and reports. *)
exception Bad of string

let get j name conv =
  match Option.bind (Json.member name j) conv with
  | Some v -> v
  | None -> raise (Bad (Printf.sprintf "missing or invalid field %S" name))

let get_opt j name conv =
  match Json.member name j with
  | None | Some Json.Null -> None
  | Some v -> (
    match conv v with
    | Some v -> Some v
    | None -> raise (Bad (Printf.sprintf "invalid field %S" name)))

let get_dir j =
  match direction_of_string (get j "dir" Json.to_str) with
  | Some d -> d
  | None -> raise (Bad "invalid field \"dir\"")

let get_loss j =
  match loss_of_string (get j "loss" Json.to_str) with
  | Some l -> l
  | None -> raise (Bad "invalid field \"loss\"")

let of_json j =
  match
    let time = get j "t" Json.to_int in
    let ev = get j "ev" Json.to_str in
    let kind =
      match ev with
      | "run_meta" ->
        Run_meta
          {
            run_id = get j "run" Json.to_str;
            protocol = get j "protocol" Json.to_str;
            algorithm = get j "algorithm" Json.to_str;
            sites = get j "sites" Json.to_int;
            cost_model = get j "cost_model" Json.to_str;
          }
      | "message" ->
        Message
          {
            dir = get_dir j;
            site = get j "site" Json.to_int;
            payload = get j "payload" Json.to_int;
            bytes = get j "bytes" Json.to_int;
          }
      | "broadcast" ->
        Broadcast
          {
            except = get_opt j "except" Json.to_int;
            payload = get j "payload" Json.to_int;
            bytes = get j "bytes" Json.to_int;
            messages = get j "messages" Json.to_int;
            recipients = get j "recipients" Json.to_int;
          }
      | "sketch_sent" ->
        Sketch_sent
          {
            site = get j "site" Json.to_int;
            bytes = get j "bytes" Json.to_int;
            items = get_opt j "items" Json.to_int;
          }
      | "count_sent" ->
        Count_sent
          {
            site = get j "site" Json.to_int;
            item = get j "item" Json.to_int;
            count = get j "count" Json.to_int;
            delta = get j "delta" Json.to_int;
          }
      | "threshold_crossed" ->
        Threshold_crossed
          {
            site = get j "site" Json.to_int;
            estimate = get j "estimate" Json.to_float;
            threshold = get j "threshold" Json.to_float;
          }
      | "estimate_update" ->
        Estimate_update
          {
            previous = get j "previous" Json.to_float;
            estimate = get j "estimate" Json.to_float;
          }
      | "level_advance" ->
        Level_advance
          {
            previous = get j "previous" Json.to_int;
            level = get j "level" Json.to_int;
          }
      | "resync" ->
        Resync
          { site = get j "site" Json.to_int; bytes = get j "bytes" Json.to_int }
      | "drop" ->
        Drop
          {
            dir = get_dir j;
            site = get j "site" Json.to_int;
            bytes = get j "bytes" Json.to_int;
            loss = get_loss j;
          }
      | "duplicate" ->
        Duplicate
          {
            dir = get_dir j;
            site = get j "site" Json.to_int;
            bytes = get j "bytes" Json.to_int;
            copies = get j "copies" Json.to_int;
          }
      | "retry" ->
        Retry
          {
            dir = get_dir j;
            site = get j "site" Json.to_int;
            attempt = get j "attempt" Json.to_int;
            bytes = get j "bytes" Json.to_int;
          }
      | "forward" ->
        Forward
          {
            dir = get_dir j;
            node = get j "node" Json.to_int;
            payload = get j "payload" Json.to_int;
            bytes = get j "bytes" Json.to_int;
          }
      | "crash" -> Crash { site = get j "site" Json.to_int }
      | "recover" ->
        Recover
          {
            site = get j "site" Json.to_int;
            resync_bytes = get j "resync_bytes" Json.to_int;
          }
      | "span" ->
        let trace_id =
          let s = get j "trace" Json.to_str in
          match Int64.of_string_opt ("0x" ^ s) with
          | Some id -> id
          | None -> raise (Bad "invalid field \"trace\"")
        in
        Span
          {
            name = get j "name" Json.to_str;
            site = get_opt j "site" Json.to_int;
            trace_id;
            span_id = Int64.of_int (get j "span" Json.to_int);
            parent_id = Int64.of_int (get j "parent" Json.to_int);
            start_ns = Int64.of_int (get j "start_ns" Json.to_int);
            end_ns = Int64.of_int (get j "end_ns" Json.to_int);
          }
      | "view_report" ->
        View_report
          {
            index = get j "index" Json.to_int;
            label = get j "label" Json.to_str;
            spec = get j "spec" Json.to_str;
            estimate = get j "estimate" Json.to_float;
            routed = get j "routed" Json.to_int;
            bytes = get j "bytes" Json.to_int;
          }
      | other -> raise (Bad (Printf.sprintf "unknown event kind %S" other))
    in
    { time; kind }
  with
  | ev -> Ok ev
  | exception Bad msg -> Error msg

let encode_line ev = Json.to_string (to_json ev)

let decode_line line =
  match Json.of_string line with
  | Error e -> Error e
  | Ok j -> of_json j

let fold_channel ?(name = "<channel>") ~f ~init ic =
  let rec loop lineno acc =
    match input_line ic with
    | exception End_of_file -> Ok acc
    | line ->
      let line = String.trim line in
      if line = "" then loop (lineno + 1) acc
      else (
        match decode_line line with
        | Error e -> Error (Printf.sprintf "%s:%d: %s" name lineno e)
        | Ok ev -> loop (lineno + 1) (f acc ev))
  in
  loop 1 init

let fold_file ~f ~init path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> fold_channel ~name:path ~f ~init ic)

let read_file path =
  Result.map List.rev
    (fold_file ~f:(fun acc ev -> ev :: acc) ~init:[] path)
