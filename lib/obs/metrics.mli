(** A small metrics registry: counters, gauges, and log-scale histograms,
    with Prometheus text exposition and a JSON dump.

    Instruments are interned by [(name, labels)]: registering the same
    pair twice returns the same instrument, so instrumentation sites can
    look instruments up on the fly without coordinating ownership.
    Registering an existing pair as a different instrument type raises
    [Invalid_argument].

    Histograms use base-2 log-scale buckets: upper bounds [2^e] for
    [e = min_exp .. max_exp] plus a [+Inf] overflow bucket.  Binning
    follows the half-open convention [[2^k, 2^(k+1))]: an observation of
    exactly [2^k] counts toward the bucket bounded by [2^(k+1)], never
    the one bounded by [2^k].  The defaults suit byte- and count-valued
    observations; pass a negative [min_exp] for sub-unit values such as
    relative errors. *)

type t

type counter
type gauge
type histogram

val create : unit -> t

(** {1 Registration} *)

val counter :
  t -> ?help:string -> ?labels:(string * string) list -> string -> counter

val gauge :
  t -> ?help:string -> ?labels:(string * string) list -> string -> gauge

val histogram :
  t ->
  ?help:string ->
  ?labels:(string * string) list ->
  ?min_exp:int ->
  ?max_exp:int ->
  string ->
  histogram
(** Defaults: [min_exp = 0], [max_exp = 30] (buckets 1, 2, 4, …, 2^30,
    +Inf).  Requires [min_exp <= max_exp]. *)

(** {1 Updates} *)

val inc : counter -> unit
val add : counter -> int -> unit
val set : gauge -> float -> unit
val observe : histogram -> float -> unit

(** {1 Reading} *)

val counter_value : counter -> int
val gauge_value : gauge -> float
val histogram_count : histogram -> int
val histogram_sum : histogram -> float

val histogram_buckets : histogram -> (float * int) list
(** [(upper_bound, cumulative_count)] pairs ending with [(infinity, n)],
    Prometheus [le] semantics. *)

(** {1 Exposition} *)

val to_prometheus : t -> string
(** Prometheus text format (version 0.0.4): [# HELP]/[# TYPE] headers per
    metric name, histogram [_bucket]/[_sum]/[_count] expansion, output
    sorted by name then labels for determinism. *)

val to_json : t -> Json.t
(** [{"metrics": [...]}] with one object per instrument. *)

(** {1 Scrape parsing} *)

type sample = {
  sample_name : string;
  sample_labels : (string * string) list;
  sample_value : float;
}
(** One exposition line: [name{labels} value].  Histogram expansions
    appear as their [_bucket]/[_sum]/[_count] series. *)

val parse_prometheus : string -> (sample list, string) result
(** Parse Prometheus text exposition (the inverse of {!to_prometheus}):
    comment and blank lines are skipped, [+Inf]/[-Inf]/[NaN] values and
    escaped label values are understood, trailing timestamps are
    ignored.  Errors name the offending line. *)
