(** Aggregate a replayed trace into per-site and per-phase summaries.

    This is the data layer behind [wdmon inspect]: pure folds over
    {!Event.t} lists producing plain records, so the aggregation is
    testable independently of table rendering.

    Broadcast attribution follows the ledger semantics: a unicast-model
    broadcast (one ledger message per recipient) is split evenly across
    its recipients' down-bytes; a radio-model broadcast (one ledger
    message total) is accounted to the shared medium
    ({!t.medium_bytes}), not to any site. *)

type site_row = {
  site : int;
  s_msgs_up : int;
  s_bytes_up : int;
  s_msgs_down : int;
  s_bytes_down : int;  (** unicast deliveries incl. broadcast share *)
  s_sketch_sends : int;  (** full-sketch encoded contributions *)
  s_item_sends : int;  (** item-batched contributions *)
  s_count_sends : int;
  s_crossings : int;
  s_resyncs : int;
  s_drops : int;  (** transmissions on this site's link lost to faults *)
  s_duplicates : int;  (** extra message copies delivered on this link *)
  s_retries : int;  (** reliable-send retransmissions on this link *)
  s_crashes : int;
  s_recovers : int;
  s_mean_send_gap : float;  (** mean updates between sends; [nan] with
                                fewer than two sends *)
}

type phase_row = {
  phase : int;  (** 0-based phase index *)
  p_from : int;
  p_to : int;  (** update-index range covered, inclusive *)
  p_events : int;
  p_bytes_up : int;
  p_bytes_down : int;
  p_sends : int;  (** sketch + count sends *)
  p_crossings : int;
  p_estimate : float option;  (** last coordinator estimate in phase *)
}

type span_stat = {
  sp_count : int;
  sp_p50_ns : float;  (** nearest-rank median duration, nanoseconds *)
  sp_p90_ns : float;
  sp_max_ns : float;
}
(** Duration digest of one span name (see {!Event.kind.Span}). *)

type view_row = {
  v_index : int;  (** registry position; 0 is the primary *)
  v_label : string;
  v_spec : string;
  v_estimate : float;
  v_routed : int;  (** arrivals the view's selector accepted *)
  v_bytes : int;
}
(** One standing view's final report (see {!Event.kind.View_report}). *)

type t = {
  run : (string * string) list;
      (** metadata key/values from the trace's [Run_meta] event, if any *)
  events : int;
  updates : int;  (** largest update index stamped on any event *)
  msgs_up : int;
  msgs_down : int;
  bytes_up : int;
  bytes_down : int;
  medium_bytes : int;
  broadcasts : int;
  level : int;
  first_estimate : float option;
  last_estimate : float option;
  drops : int;
  dropped_bytes : int;  (** bytes charged for transmissions that were lost *)
  duplicates : int;  (** extra copies delivered beyond the first *)
  duplicate_bytes : int;  (** extra bytes charged for those copies *)
  retries : int;
  forwards : int;  (** aggregator backbone hops in a tree topology *)
  forward_bytes : int;  (** bytes charged to those backbone hops *)
  crashes : int;
  recovers : int;
  degraded_sites : int list;
      (** sites with a [Crash] and no matching [Recover] by end of trace *)
  kind_counts : (string * int) list;  (** sorted by kind name *)
  sites : site_row list;  (** sorted by site index *)
  span_stats : (string * span_stat) list;
      (** per-span-name latency digests, sorted by name; empty for traces
          recorded without a span recorder *)
  views : view_row list;
      (** per-view final reports, sorted by index; empty for single-view
          traces *)
}

val of_events : Event.t list -> t

val phases : n:int -> Event.t list -> phase_row list
(** Split the update-index range into [n] equal spans and aggregate each.
    Requires [n >= 1]; returns [[]] on an empty trace. *)
