(** A minimal JSON value type with a printer and parser.

    The observability layer emits and replays JSONL traces; this module is
    the self-contained codec behind it (the toolchain deliberately carries
    no third-party JSON dependency).  It covers the full JSON grammar but
    is tuned for the flat, ASCII-keyed objects the tracer produces. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering.  Non-finite floats render as [null]
    since JSON cannot represent them. *)

val to_string_pretty : t -> string
(** Multi-line rendering with two-space indentation — for committed
    artifacts (eval baselines, bench records) that humans diff in
    review.  Parses back to the same value as {!to_string}. *)

val of_string : string -> (t, string) result
(** Parse one JSON document; the error string carries a character
    position.  Numbers without [.], [e] or [E] that fit an OCaml [int]
    decode as {!Int}, everything else as {!Float}.  [\uXXXX] escapes
    decode to UTF-8. *)

(** {1 Accessors} — total functions for picking apart decoded objects. *)

val member : string -> t -> t option
(** Field lookup; [None] on missing fields and non-objects. *)

val to_int : t -> int option
(** [Int] directly, and [Float] when integral. *)

val to_float : t -> float option
(** [Float] directly, and [Int] widened. *)

val to_str : t -> string option
val to_bool : t -> bool option
