type counter = {
  c_name : string;
  c_help : string;
  c_labels : (string * string) list;
  mutable c_value : int;
}

type gauge = {
  g_name : string;
  g_help : string;
  g_labels : (string * string) list;
  mutable g_value : float;
}

type histogram = {
  h_name : string;
  h_help : string;
  h_labels : (string * string) list;
  h_min_exp : int;
  h_bounds : float array; (* 2^min_exp .. 2^max_exp; +Inf bucket is extra *)
  h_buckets : int array; (* length = Array.length h_bounds + 1 *)
  mutable h_sum : float;
  mutable h_count : int;
}

type instrument = Counter of counter | Gauge of gauge | Histogram of histogram

type t = {
  index : (string * (string * string) list, instrument) Hashtbl.t;
  mutable order : instrument list; (* reverse registration order *)
}

let create () = { index = Hashtbl.create 64; order = [] }

let register t name labels build describe =
  let key = (name, labels) in
  match Hashtbl.find_opt t.index key with
  | Some existing -> describe existing
  | None ->
    let inst = build () in
    Hashtbl.replace t.index key inst;
    t.order <- inst :: t.order;
    describe inst

let type_error name = invalid_arg ("Metrics: " ^ name ^ " registered twice with different types")

let counter t ?(help = "") ?(labels = []) name =
  register t name labels
    (fun () -> Counter { c_name = name; c_help = help; c_labels = labels; c_value = 0 })
    (function Counter c -> c | _ -> type_error name)

let gauge t ?(help = "") ?(labels = []) name =
  register t name labels
    (fun () -> Gauge { g_name = name; g_help = help; g_labels = labels; g_value = 0.0 })
    (function Gauge g -> g | _ -> type_error name)

let histogram t ?(help = "") ?(labels = []) ?(min_exp = 0) ?(max_exp = 30) name =
  if min_exp > max_exp then
    invalid_arg "Metrics.histogram: min_exp must be <= max_exp";
  register t name labels
    (fun () ->
      let n = max_exp - min_exp + 1 in
      Histogram
        {
          h_name = name;
          h_help = help;
          h_labels = labels;
          h_min_exp = min_exp;
          h_bounds = Array.init n (fun i -> 2.0 ** Float.of_int (min_exp + i));
          h_buckets = Array.make (n + 1) 0;
          h_sum = 0.0;
          h_count = 0;
        })
    (function Histogram h -> h | _ -> type_error name)

let inc c = c.c_value <- c.c_value + 1
let add c n = c.c_value <- c.c_value + n
let set g v = g.g_value <- v

let observe h v =
  (* First bound strictly above [v]: bucket [i] covers [2^(min_exp+i-1),
     2^(min_exp+i)), so an exact power of two starts its bucket rather
     than closing the one below.  Values beyond the last bound land in
     the +Inf bucket. *)
  let n = Array.length h.h_bounds in
  let rec find i = if i >= n || v < h.h_bounds.(i) then i else find (i + 1) in
  let idx = find 0 in
  h.h_buckets.(idx) <- h.h_buckets.(idx) + 1;
  h.h_sum <- h.h_sum +. v;
  h.h_count <- h.h_count + 1

let counter_value c = c.c_value
let gauge_value g = g.g_value
let histogram_count h = h.h_count
let histogram_sum h = h.h_sum

let histogram_buckets h =
  let acc = ref 0 in
  let finite =
    Array.to_list
      (Array.mapi
         (fun i bound ->
           acc := !acc + h.h_buckets.(i);
           (bound, !acc))
         h.h_bounds)
  in
  finite @ [ (Float.infinity, h.h_count) ]

(* ------------------------------------------------------------------ *)
(* Exposition *)

let instrument_name = function
  | Counter c -> c.c_name
  | Gauge g -> g.g_name
  | Histogram h -> h.h_name

let instrument_help = function
  | Counter c -> c.c_help
  | Gauge g -> g.g_help
  | Histogram h -> h.h_help

let instrument_labels = function
  | Counter c -> c.c_labels
  | Gauge g -> g.g_labels
  | Histogram h -> h.h_labels

let instrument_type = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

let sorted_instruments t =
  List.sort
    (fun a b ->
      match compare (instrument_name a) (instrument_name b) with
      | 0 -> compare (instrument_labels a) (instrument_labels b)
      | c -> c)
    (List.rev t.order)

let escape_label_value s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let render_labels = function
  | [] -> ""
  | labels ->
    "{"
    ^ String.concat ","
        (List.map
           (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label_value v))
           labels)
    ^ "}"

let float_str f =
  if f = Float.infinity then "+Inf"
  else if Float.is_integer f && Float.abs f < 1e15 then
    string_of_int (Float.to_int f)
  else Printf.sprintf "%g" f

let to_prometheus t =
  let buf = Buffer.create 1024 in
  let seen_header = Hashtbl.create 16 in
  List.iter
    (fun inst ->
      let name = instrument_name inst in
      if not (Hashtbl.mem seen_header name) then begin
        Hashtbl.replace seen_header name ();
        let help = instrument_help inst in
        if help <> "" then
          Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" name help);
        Buffer.add_string buf
          (Printf.sprintf "# TYPE %s %s\n" name (instrument_type inst))
      end;
      let labels = instrument_labels inst in
      match inst with
      | Counter c ->
        Buffer.add_string buf
          (Printf.sprintf "%s%s %d\n" name (render_labels labels) c.c_value)
      | Gauge g ->
        Buffer.add_string buf
          (Printf.sprintf "%s%s %s\n" name (render_labels labels)
             (float_str g.g_value))
      | Histogram h ->
        List.iter
          (fun (bound, cumulative) ->
            Buffer.add_string buf
              (Printf.sprintf "%s_bucket%s %d\n" name
                 (render_labels (labels @ [ ("le", float_str bound) ]))
                 cumulative))
          (histogram_buckets h);
        Buffer.add_string buf
          (Printf.sprintf "%s_sum%s %s\n" name (render_labels labels)
             (float_str h.h_sum));
        Buffer.add_string buf
          (Printf.sprintf "%s_count%s %d\n" name (render_labels labels)
             h.h_count))
    (sorted_instruments t);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Scrape parsing: the inverse of [to_prometheus], enough to read back
   what this module (or any well-formed exporter) writes.  [wdmon top]
   uses it to render a live dashboard from an HTTP scrape. *)

type sample = {
  sample_name : string;
  sample_labels : (string * string) list;
  sample_value : float;
}

let parse_value s =
  match s with
  | "+Inf" -> Some Float.infinity
  | "-Inf" -> Some Float.neg_infinity
  | "NaN" -> Some Float.nan
  | s -> float_of_string_opt s

let is_name_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = ':'

exception Parse of string

let parse_labels line pos =
  (* [pos] points just past '{'; returns labels and position past '}'. *)
  let n = String.length line in
  let labels = ref [] in
  let pos = ref pos in
  let rec skip_ws () =
    if !pos < n && (line.[!pos] = ' ' || line.[!pos] = '\t') then begin
      incr pos;
      skip_ws ()
    end
  in
  let rec one () =
    skip_ws ();
    if !pos < n && line.[!pos] = '}' then incr pos
    else begin
      let start = !pos in
      while !pos < n && is_name_char line.[!pos] do
        incr pos
      done;
      if !pos = start then raise (Parse "expected label name");
      let key = String.sub line start (!pos - start) in
      if !pos >= n || line.[!pos] <> '=' then raise (Parse "expected '='");
      incr pos;
      if !pos >= n || line.[!pos] <> '"' then raise (Parse "expected '\"'");
      incr pos;
      let buf = Buffer.create 16 in
      let rec value () =
        if !pos >= n then raise (Parse "unterminated label value")
        else
          match line.[!pos] with
          | '"' -> incr pos
          | '\\' when !pos + 1 < n ->
            (match line.[!pos + 1] with
            | 'n' -> Buffer.add_char buf '\n'
            | c -> Buffer.add_char buf c);
            pos := !pos + 2;
            value ()
          | c ->
            Buffer.add_char buf c;
            incr pos;
            value ()
      in
      value ();
      labels := (key, Buffer.contents buf) :: !labels;
      skip_ws ();
      if !pos < n && line.[!pos] = ',' then begin
        incr pos;
        one ()
      end
      else if !pos < n && line.[!pos] = '}' then incr pos
      else raise (Parse "expected ',' or '}'")
    end
  in
  one ();
  (List.rev !labels, !pos)

let parse_sample line =
  let n = String.length line in
  let pos = ref 0 in
  while !pos < n && is_name_char line.[!pos] do
    incr pos
  done;
  if !pos = 0 then raise (Parse "expected metric name");
  let name = String.sub line 0 !pos in
  let labels =
    if !pos < n && line.[!pos] = '{' then begin
      let labels, p = parse_labels line (!pos + 1) in
      pos := p;
      labels
    end
    else []
  in
  let rest = String.trim (String.sub line !pos (n - !pos)) in
  (* Value, optionally followed by a timestamp we ignore. *)
  let value_str =
    match String.index_opt rest ' ' with
    | Some i -> String.sub rest 0 i
    | None -> rest
  in
  match parse_value value_str with
  | Some v -> { sample_name = name; sample_labels = labels; sample_value = v }
  | None -> raise (Parse (Printf.sprintf "invalid sample value %S" value_str))

let parse_prometheus text =
  let lines = String.split_on_char '\n' text in
  let rec loop lineno acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
      let line = String.trim line in
      if line = "" || line.[0] = '#' then loop (lineno + 1) acc rest
      else (
        match parse_sample line with
        | sample -> loop (lineno + 1) (sample :: acc) rest
        | exception Parse msg ->
          Error (Printf.sprintf "line %d: %s" lineno msg))
  in
  loop 1 [] lines

let to_json t =
  let label_obj labels =
    Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) labels)
  in
  let one inst =
    let base =
      [
        ("name", Json.Str (instrument_name inst));
        ("type", Json.Str (instrument_type inst));
        ("labels", label_obj (instrument_labels inst));
      ]
    in
    let value =
      match inst with
      | Counter c -> [ ("value", Json.Int c.c_value) ]
      | Gauge g -> [ ("value", Json.Float g.g_value) ]
      | Histogram h ->
        [
          ( "buckets",
            Json.List
              (List.map
                 (fun (bound, cumulative) ->
                   Json.Obj
                     [
                       ("le", Json.Str (float_str bound));
                       ("count", Json.Int cumulative);
                     ])
                 (histogram_buckets h)) );
          ("sum", Json.Float h.h_sum);
          ("count", Json.Int h.h_count);
        ]
    in
    Json.Obj (base @ value)
  in
  Json.Obj [ ("metrics", Json.List (List.map one (sorted_instruments t))) ]
