(** Structured protocol trace events.

    One event records one observable step of a monitoring run: a message
    crossing the simulated network, a site's local threshold tripping, a
    sketch or count shipped upstream, the coordinator's estimate or the
    sampler level moving, or a resynchronization reply.  Emitters stamp
    each event with the protocol-wide update index at which it happened
    ({!t.time}), so a replay can reconstruct when during the stream every
    communication decision was made.

    Byte quantities on events are on-the-wire sizes (payload plus
    {!Wd_net.Wire.header_bytes}), exactly what the {!Wd_net.Network}
    ledger accumulates — summing trace events by direction must reproduce
    the ledger totals for the same run. *)

type direction = Up | Down

val direction_to_string : direction -> string
val direction_of_string : string -> direction option

type loss = Link_drop | Corrupt_drop | Crash_drop
(** Why a transmission failed to arrive: a random link loss, a corrupted
    frame discarded by the receiver's checksum, or the destination (or
    sender) being inside a scheduled crash window. *)

val loss_to_string : loss -> string
val loss_of_string : string -> loss option

type kind =
  | Run_meta of {
      run_id : string;
      protocol : string;  (** ["dc"], ["ds"], ["hh"], … *)
      algorithm : string;
      sites : int;
      cost_model : string;
    }
      (** Emitted once at the start of an instrumented run; identifies the
          trace. *)
  | Message of { dir : direction; site : int; payload : int; bytes : int }
      (** One point-to-point message ([bytes] = payload + header). *)
  | Broadcast of {
      except : int option;
      payload : int;
      bytes : int;  (** total bytes charged to the ledger *)
      messages : int;  (** ledger message count: recipients under
                           Unicast, 1 under Radio_broadcast *)
      recipients : int;  (** sites the content reaches *)
    }
      (** One coordinator broadcast, in either cost model. *)
  | Sketch_sent of { site : int; bytes : int; items : int option }
      (** A site shipped its contribution to the coordinator; [items] is
          [Some n] when the Section 4.2 item-batching encoding was used,
          [None] when the full sketch went out. *)
  | Count_sent of { site : int; item : int; count : int; delta : int }
      (** Distinct-sample tracking: a site reported a new local count for
          a sampled item. *)
  | Threshold_crossed of { site : int; estimate : float; threshold : float }
      (** A site's local estimate exceeded its send threshold [skt]/[dst];
          always immediately followed by the resulting send. *)
  | Estimate_update of { previous : float; estimate : float }
      (** The coordinator's global estimate changed. *)
  | Level_advance of { previous : int; level : int }
      (** The coordinator's sampling level rose (distinct sampling). *)
  | Resync of { site : int; bytes : int }
      (** The coordinator sent one site a state refresh (LS sketch reply,
          LCS count reply, or a post-crash resynchronization). *)
  | Drop of { dir : direction; site : int; bytes : int; loss : loss }
      (** A transmission on one link was lost.  [bytes] is what the sender
          was charged for the failed attempt (0 for a radio reception loss,
          where the shared medium was already charged by the broadcast). *)
  | Duplicate of { dir : direction; site : int; bytes : int; copies : int }
      (** The network delivered [copies] extra copies of a message on one
          link; [bytes] is the extra ledger charge beyond the first copy. *)
  | Retry of { dir : direction; site : int; attempt : int; bytes : int }
      (** A reliable send timed out waiting for its ack and retransmitted;
          [attempt] is 1-based over the retries (not the initial send). *)
  | Forward of { dir : direction; node : int; payload : int; bytes : int }
      (** One backbone hop in a tree topology: aggregator [node] (a
          fault-plan node id, [sites + j] for aggregator [j]) forwarded
          a merged payload toward the root ([Up]) or relayed a
          coordinator message toward its subtree ([Down]).  Backbone
          charges live in the ledger's backbone counters, not in
          [bytes_up]/[bytes_down], so flat-star traces and reconciliation
          laws are untouched. *)
  | Crash of { site : int }
      (** A site entered a scheduled crash window and lost volatile state. *)
  | Recover of { site : int; resync_bytes : int }
      (** A crashed site came back; [resync_bytes] is the total cost of the
          state resynchronization exchange that reintegrated it. *)
  | Span of {
      name : string;  (** ["message.up"], ["broadcast"], ["request_up"],
                          ["relay.turnaround"], ["observe_batch"], … *)
      site : int option;
      trace_id : int64;  (** run-scoped; shared by every span of one run *)
      span_id : int64;
      parent_id : int64;  (** [0L] for a root span *)
      start_ns : int64;
      end_ns : int64;
    }
      (** One timed operation, causally linked to its parent span.  The
          timestamps are monotonic wall-clock nanoseconds from the
          recorder's injected clock (conventionally Unix-epoch-based, see
          [Wd_net.Clock]) — meaningful as durations and, within one
          host, as cross-process orderings; never stable across runs.
          Span events are only emitted when a recorder is attached (off
          by default), so golden logical traces never contain them. *)
  | View_report of {
      index : int;  (** view position in the registry; 0 is the primary *)
      label : string;
      spec : string;  (** the view's query in spec syntax *)
      estimate : float;
      routed : int;  (** arrivals the view's selector accepted *)
      bytes : int;  (** the view tracker's total ledger bytes *)
    }
      (** A standing view's final answer and cost, emitted once per view
          at the end of a multi-view run (single-view runs emit none, so
          legacy traces are unchanged). *)

type t = { time : int; kind : kind }
(** [time] is the emitter's update index (1-based count of [observe]
    calls) at emission; 0 when unknown (e.g. run metadata). *)

val kind_name : kind -> string
(** Stable lowercase tag, also used as the JSONL discriminator:
    ["run_meta"], ["message"], ["broadcast"], ["sketch_sent"],
    ["count_sent"], ["threshold_crossed"], ["estimate_update"],
    ["level_advance"], ["resync"], ["drop"], ["duplicate"], ["retry"],
    ["crash"], ["recover"], ["span"], ["view_report"]. *)

val site : t -> int option
(** The remote site an event concerns, when it concerns exactly one. *)
