type direction = Up | Down

let direction_to_string = function Up -> "up" | Down -> "down"

let direction_of_string = function
  | "up" -> Some Up
  | "down" -> Some Down
  | _ -> None

type loss = Link_drop | Corrupt_drop | Crash_drop

let loss_to_string = function
  | Link_drop -> "link_drop"
  | Corrupt_drop -> "corrupt_drop"
  | Crash_drop -> "crash_drop"

let loss_of_string = function
  | "link_drop" -> Some Link_drop
  | "corrupt_drop" -> Some Corrupt_drop
  | "crash_drop" -> Some Crash_drop
  | _ -> None

type kind =
  | Run_meta of {
      run_id : string;
      protocol : string;
      algorithm : string;
      sites : int;
      cost_model : string;
    }
  | Message of { dir : direction; site : int; payload : int; bytes : int }
  | Broadcast of {
      except : int option;
      payload : int;
      bytes : int;
      messages : int;
      recipients : int;
    }
  | Sketch_sent of { site : int; bytes : int; items : int option }
  | Count_sent of { site : int; item : int; count : int; delta : int }
  | Threshold_crossed of { site : int; estimate : float; threshold : float }
  | Estimate_update of { previous : float; estimate : float }
  | Level_advance of { previous : int; level : int }
  | Resync of { site : int; bytes : int }
  | Drop of { dir : direction; site : int; bytes : int; loss : loss }
  | Duplicate of { dir : direction; site : int; bytes : int; copies : int }
  | Retry of { dir : direction; site : int; attempt : int; bytes : int }
  | Forward of { dir : direction; node : int; payload : int; bytes : int }
  | Crash of { site : int }
  | Recover of { site : int; resync_bytes : int }
  | Span of {
      name : string;
      site : int option;
      trace_id : int64;
      span_id : int64;
      parent_id : int64;
      start_ns : int64;
      end_ns : int64;
    }
  | View_report of {
      index : int;
      label : string;
      spec : string;
      estimate : float;
      routed : int;
      bytes : int;
    }

type t = { time : int; kind : kind }

let kind_name = function
  | Run_meta _ -> "run_meta"
  | Message _ -> "message"
  | Broadcast _ -> "broadcast"
  | Sketch_sent _ -> "sketch_sent"
  | Count_sent _ -> "count_sent"
  | Threshold_crossed _ -> "threshold_crossed"
  | Estimate_update _ -> "estimate_update"
  | Level_advance _ -> "level_advance"
  | Resync _ -> "resync"
  | Drop _ -> "drop"
  | Duplicate _ -> "duplicate"
  | Retry _ -> "retry"
  | Forward _ -> "forward"
  | Crash _ -> "crash"
  | Recover _ -> "recover"
  | Span _ -> "span"
  | View_report _ -> "view_report"

let site t =
  match t.kind with
  | Message { site; _ }
  | Sketch_sent { site; _ }
  | Count_sent { site; _ }
  | Threshold_crossed { site; _ }
  | Resync { site; _ }
  | Drop { site; _ }
  | Duplicate { site; _ }
  | Retry { site; _ }
  | Crash { site }
  | Recover { site; _ } -> Some site
  | Span { site; _ } -> site
  | Run_meta _ | Broadcast _ | Estimate_update _ | Level_advance _
  | Forward _ | View_report _ -> None
