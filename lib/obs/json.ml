type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing *)

let escape_into buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_into buf f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.1f" f)
  else Buffer.add_string buf (Printf.sprintf "%.17g" f)

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> if Float.is_finite f then float_into buf f else write buf Null
  | Str s -> escape_into buf s
  | List l ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char buf ',';
        write buf v)
      l;
    Buffer.add_char buf ']'
  | Obj kvs ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_into buf k;
        Buffer.add_char buf ':';
        write buf v)
      kvs;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 128 in
  write buf v;
  Buffer.contents buf

(* Two-space indentation; scalars and empty containers stay on one
   line.  The token stream is identical to [to_string] modulo
   whitespace, so both parse back to the same value. *)
let rec write_pretty buf ~indent v =
  let pad n = Buffer.add_string buf (String.make (2 * n) ' ') in
  match v with
  | Null | Bool _ | Int _ | Float _ | Str _ | List [] | Obj [] ->
    write buf v
  | List l ->
    Buffer.add_string buf "[\n";
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_string buf ",\n";
        pad (indent + 1);
        write_pretty buf ~indent:(indent + 1) x)
      l;
    Buffer.add_char buf '\n';
    pad indent;
    Buffer.add_char buf ']'
  | Obj kvs ->
    Buffer.add_string buf "{\n";
    List.iteri
      (fun i (k, x) ->
        if i > 0 then Buffer.add_string buf ",\n";
        pad (indent + 1);
        escape_into buf k;
        Buffer.add_string buf ": ";
        write_pretty buf ~indent:(indent + 1) x)
      kvs;
    Buffer.add_char buf '\n';
    pad indent;
    Buffer.add_char buf '}'

let to_string_pretty v =
  let buf = Buffer.create 256 in
  write_pretty buf ~indent:0 v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing: plain recursive descent over the input string. *)

exception Fail of string * int

type state = { src : string; mutable pos : int }

let error st msg = raise (Fail (msg, st.pos))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance st;
    skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some d when d = c -> advance st
  | _ -> error st (Printf.sprintf "expected %C" c)

let literal st word value =
  let n = String.length word in
  if
    st.pos + n <= String.length st.src
    && String.sub st.src st.pos n = word
  then begin
    st.pos <- st.pos + n;
    value
  end
  else error st (Printf.sprintf "expected %s" word)

(* Decode one code point to UTF-8 bytes. *)
let utf8_into buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

let hex4 st =
  if st.pos + 4 > String.length st.src then error st "truncated \\u escape";
  let v =
    try int_of_string ("0x" ^ String.sub st.src st.pos 4)
    with _ -> error st "bad \\u escape"
  in
  st.pos <- st.pos + 4;
  v

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek st with
    | None -> error st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' ->
      advance st;
      (match peek st with
      | None -> error st "unterminated escape"
      | Some c ->
        advance st;
        (match c with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'u' -> utf8_into buf (hex4 st)
        | _ -> error st "bad escape"));
      loop ()
    | Some c ->
      advance st;
      Buffer.add_char buf c;
      loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek st with Some c -> is_num_char c | None -> false) do
    advance st
  done;
  if st.pos = start then error st "expected number";
  let s = String.sub st.src start (st.pos - start) in
  let is_float = String.exists (function '.' | 'e' | 'E' -> true | _ -> false) s in
  if is_float then
    match float_of_string_opt s with
    | Some f -> Float f
    | None -> error st "bad number"
  else
    match int_of_string_opt s with
    | Some i -> Int i
    | None -> (
      match float_of_string_opt s with
      | Some f -> Float f
      | None -> error st "bad number")

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> error st "unexpected end of input"
  | Some '{' ->
    advance st;
    skip_ws st;
    if peek st = Some '}' then begin
      advance st;
      Obj []
    end
    else begin
      let rec fields acc =
        skip_ws st;
        let k = parse_string st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          fields ((k, v) :: acc)
        | Some '}' ->
          advance st;
          List.rev ((k, v) :: acc)
        | _ -> error st "expected ',' or '}'"
      in
      Obj (fields [])
    end
  | Some '[' ->
    advance st;
    skip_ws st;
    if peek st = Some ']' then begin
      advance st;
      List []
    end
    else begin
      let rec elems acc =
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          elems (v :: acc)
        | Some ']' ->
          advance st;
          List.rev (v :: acc)
        | _ -> error st "expected ',' or ']'"
      in
      List (elems [])
    end
  | Some '"' -> Str (parse_string st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some _ -> parse_number st

let of_string s =
  let st = { src = s; pos = 0 } in
  match
    let v = parse_value st in
    skip_ws st;
    if st.pos <> String.length s then error st "trailing input";
    v
  with
  | v -> Ok v
  | exception Fail (msg, pos) ->
    Error (Printf.sprintf "JSON parse error at offset %d: %s" pos msg)

(* ------------------------------------------------------------------ *)
(* Accessors *)

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None

let to_int = function
  | Int i -> Some i
  | Float f when Float.is_integer f -> Some (Float.to_int f)
  | _ -> None

let to_float = function
  | Float f -> Some f
  | Int i -> Some (Float.of_int i)
  | _ -> None

let to_str = function Str s -> Some s | _ -> None

let to_bool = function Bool b -> Some b | _ -> None
