type ring = {
  capacity : int;
  buf : Event.t option array;
  mutable next : int; (* slot for the next write *)
  mutable stored : int;
}

type jsonl = {
  mutable oc : out_channel option;
  jbuf : Buffer.t;
  buffer_bytes : int;
}

(* The metrics sink keeps direct instrument handles for the hot counters
   and per-site caches so one event costs a few field updates, not
   registry lookups. *)
type metrics_state = {
  reg : Metrics.t;
  msgs_up : Metrics.counter;
  msgs_down : Metrics.counter;
  bytes_up : Metrics.counter;
  bytes_down : Metrics.counter;
  payload_up : Metrics.histogram;
  payload_down : Metrics.histogram;
  site_up : (int, Metrics.counter) Hashtbl.t;
  site_down : (int, Metrics.counter) Hashtbl.t;
  broadcasts : Metrics.counter;
  sketch_sends_items : Metrics.counter;
  sketch_sends_full : Metrics.counter;
  sketch_bytes : Metrics.histogram;
  count_sends : Metrics.counter;
  send_gap : Metrics.histogram;
  last_send : (int, int) Hashtbl.t;
  crossings : Metrics.counter;
  resyncs : Metrics.counter;
  resync_bytes : Metrics.counter;
  estimate : Metrics.gauge;
  level : Metrics.gauge;
  drops : Metrics.counter;
  dropped_bytes : Metrics.counter;
  duplicates : Metrics.counter;
  duplicate_bytes : Metrics.counter;
  retries : Metrics.counter;
  forwards : Metrics.counter;
  forward_bytes : Metrics.counter;
  crashes : Metrics.counter;
  recovers : Metrics.counter;
  span_hists : (string, Metrics.histogram) Hashtbl.t;
  view_estimates : (string, Metrics.gauge) Hashtbl.t;
}

type t =
  | Null
  | Ring of ring
  | Jsonl of jsonl
  | Metrics_sink of metrics_state
  | Fanout of t list

let null = Null

let ring ~capacity =
  if capacity < 1 then invalid_arg "Sink.ring: capacity must be >= 1";
  Ring { capacity; buf = Array.make capacity None; next = 0; stored = 0 }

let jsonl ?(buffer_bytes = 65536) path =
  Jsonl
    { oc = Some (open_out path); jbuf = Buffer.create 4096; buffer_bytes }

let metrics reg =
  let c ?(labels = []) name help = Metrics.counter reg ~help ~labels name in
  let dir d = [ ("dir", d) ] in
  Metrics_sink
    {
      reg;
      msgs_up = c ~labels:(dir "up") "wd_messages_total" "messages by direction";
      msgs_down =
        c ~labels:(dir "down") "wd_messages_total" "messages by direction";
      bytes_up =
        c ~labels:(dir "up") "wd_bytes_total" "on-the-wire bytes by direction";
      bytes_down =
        c ~labels:(dir "down") "wd_bytes_total"
          "on-the-wire bytes by direction";
      payload_up =
        Metrics.histogram reg ~help:"message payload sizes"
          ~labels:(dir "up") "wd_payload_bytes";
      payload_down =
        Metrics.histogram reg ~help:"message payload sizes"
          ~labels:(dir "down") "wd_payload_bytes";
      site_up = Hashtbl.create 16;
      site_down = Hashtbl.create 16;
      broadcasts = c "wd_broadcasts_total" "coordinator broadcasts";
      sketch_sends_items =
        c
          ~labels:[ ("encoding", "items") ]
          "wd_sketch_sends_total" "site contributions by wire encoding";
      sketch_sends_full =
        c
          ~labels:[ ("encoding", "sketch") ]
          "wd_sketch_sends_total" "site contributions by wire encoding";
      sketch_bytes =
        Metrics.histogram reg ~help:"bytes per site contribution"
          "wd_sketch_send_bytes";
      count_sends = c "wd_count_sends_total" "distinct-sample count reports";
      send_gap =
        Metrics.histogram reg
          ~help:"updates between successive sends of one site"
          "wd_send_gap_updates";
      last_send = Hashtbl.create 16;
      crossings =
        c "wd_threshold_crossings_total" "local send-threshold crossings";
      resyncs = c "wd_resyncs_total" "per-site state refreshes";
      resync_bytes = c "wd_resync_bytes_total" "bytes in state refreshes";
      estimate =
        Metrics.gauge reg ~help:"coordinator's current estimate" "wd_estimate";
      level =
        Metrics.gauge reg ~help:"coordinator's sampling level" "wd_level";
      drops = c "wd_drops_total" "transmissions lost to injected faults";
      dropped_bytes =
        c "wd_dropped_bytes_total" "bytes charged for lost transmissions";
      duplicates =
        c "wd_duplicates_total" "extra message copies delivered by faults";
      duplicate_bytes =
        c "wd_duplicate_bytes_total" "extra bytes charged for duplicates";
      retries = c "wd_retries_total" "reliable-send retransmissions";
      forwards = c "wd_forwards_total" "aggregator backbone hops";
      forward_bytes =
        c "wd_forward_bytes_total" "bytes charged to backbone hops";
      crashes = c "wd_crashes_total" "site crash windows entered";
      recovers = c "wd_recovers_total" "site recoveries after crashes";
      span_hists = Hashtbl.create 8;
      view_estimates = Hashtbl.create 8;
    }

let fanout sinks = Fanout sinks

let rec enabled = function
  | Null -> false
  | Ring _ | Jsonl _ | Metrics_sink _ -> true
  | Fanout sinks -> List.exists enabled sinks

let site_counter m table dir site =
  match Hashtbl.find_opt table site with
  | Some c -> c
  | None ->
    let c =
      Metrics.counter m.reg ~help:"on-the-wire bytes by direction and site"
        ~labels:[ ("dir", dir); ("site", string_of_int site) ]
        "wd_site_bytes_total"
    in
    Hashtbl.replace table site c;
    c

(* Same instrument {!Span.observe_ns} feeds for eventless stamps, so
   live histograms and trace-replay histograms land in one family. *)
let span_hist m name =
  match Hashtbl.find_opt m.span_hists name with
  | Some h -> h
  | None ->
    let h = Span.duration_hist m.reg name in
    Hashtbl.replace m.span_hists name h;
    h

let observe_gap m ~site ~time =
  (match Hashtbl.find_opt m.last_send site with
  | Some prev -> Metrics.observe m.send_gap (Float.of_int (time - prev))
  | None -> ());
  Hashtbl.replace m.last_send site time

let record m (ev : Event.t) =
  match ev.kind with
  | Event.Run_meta _ -> ()
  | Event.Message { dir = Event.Up; site; payload; bytes } ->
    Metrics.inc m.msgs_up;
    Metrics.add m.bytes_up bytes;
    Metrics.add (site_counter m m.site_up "up" site) bytes;
    Metrics.observe m.payload_up (Float.of_int payload)
  | Event.Message { dir = Event.Down; site; payload; bytes } ->
    Metrics.inc m.msgs_down;
    Metrics.add m.bytes_down bytes;
    Metrics.add (site_counter m m.site_down "down" site) bytes;
    Metrics.observe m.payload_down (Float.of_int payload)
  | Event.Broadcast { payload; bytes; messages; _ } ->
    Metrics.add m.msgs_down messages;
    Metrics.add m.bytes_down bytes;
    Metrics.inc m.broadcasts;
    Metrics.observe m.payload_down (Float.of_int payload)
  | Event.Sketch_sent { site; bytes; items } ->
    Metrics.inc
      (match items with
      | Some _ -> m.sketch_sends_items
      | None -> m.sketch_sends_full);
    Metrics.observe m.sketch_bytes (Float.of_int bytes);
    observe_gap m ~site ~time:ev.time
  | Event.Count_sent { site; _ } ->
    Metrics.inc m.count_sends;
    observe_gap m ~site ~time:ev.time
  | Event.Threshold_crossed _ -> Metrics.inc m.crossings
  | Event.Estimate_update { estimate; _ } -> Metrics.set m.estimate estimate
  | Event.Level_advance { level; _ } ->
    Metrics.set m.level (Float.of_int level)
  | Event.Resync { bytes; _ } ->
    Metrics.inc m.resyncs;
    Metrics.add m.resync_bytes bytes
  | Event.Drop { bytes; _ } ->
    Metrics.inc m.drops;
    Metrics.add m.dropped_bytes bytes
  | Event.Duplicate { bytes; copies; _ } ->
    Metrics.add m.duplicates copies;
    Metrics.add m.duplicate_bytes bytes
  | Event.Retry _ -> Metrics.inc m.retries
  | Event.Forward { bytes; _ } ->
    Metrics.inc m.forwards;
    Metrics.add m.forward_bytes bytes
  | Event.Crash _ -> Metrics.inc m.crashes
  | Event.Recover _ -> Metrics.inc m.recovers
  | Event.Span { name; start_ns; end_ns; _ } ->
    Metrics.observe (span_hist m name)
      (Int64.to_float (Int64.sub end_ns start_ns))
  | Event.View_report { label; estimate; _ } ->
    let g =
      match Hashtbl.find_opt m.view_estimates label with
      | Some g -> g
      | None ->
        let g =
          Metrics.gauge m.reg ~help:"standing view's reported estimate"
            ~labels:[ ("view", label) ]
            "wd_view_estimate"
        in
        Hashtbl.replace m.view_estimates label g;
        g
    in
    Metrics.set g estimate

let jsonl_flush j =
  match j.oc with
  | None -> ()
  | Some oc ->
    if Buffer.length j.jbuf > 0 then begin
      Buffer.output_buffer oc j.jbuf;
      Buffer.clear j.jbuf;
      Stdlib.flush oc
    end

let rec emit sink ev =
  match sink with
  | Null -> ()
  | Ring r ->
    r.buf.(r.next) <- Some ev;
    r.next <- (r.next + 1) mod r.capacity;
    if r.stored < r.capacity then r.stored <- r.stored + 1
  | Jsonl j ->
    (match j.oc with
    | None -> invalid_arg "Sink.emit: JSONL sink is closed"
    | Some _ ->
      Buffer.add_string j.jbuf (Trace.encode_line ev);
      Buffer.add_char j.jbuf '\n';
      if Buffer.length j.jbuf >= j.buffer_bytes then jsonl_flush j)
  | Metrics_sink m -> record m ev
  | Fanout sinks -> List.iter (fun s -> emit s ev) sinks

let rec flush = function
  | Null | Ring _ | Metrics_sink _ -> ()
  | Jsonl j -> jsonl_flush j
  | Fanout sinks -> List.iter flush sinks

let rec close = function
  | Null | Ring _ | Metrics_sink _ -> ()
  | Jsonl j ->
    jsonl_flush j;
    (match j.oc with
    | Some oc ->
      close_out oc;
      j.oc <- None
    | None -> ())
  | Fanout sinks -> List.iter close sinks

let ring_contents = function
  | Ring r ->
    let out = ref [] in
    for i = 0 to r.stored - 1 do
      (* Oldest element sits [stored] slots behind the write cursor. *)
      let idx = (r.next - r.stored + i + (2 * r.capacity)) mod r.capacity in
      match r.buf.(idx) with
      | Some ev -> out := ev :: !out
      | None -> ()
    done;
    List.rev !out
  | Null | Jsonl _ | Metrics_sink _ | Fanout _ ->
    invalid_arg "Sink.ring_contents: not a ring sink"
