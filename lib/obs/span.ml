(* Causal span recorder: the wall-clock half of the trace layer.
   Logical events ({!Event}) stamp the update index; a span additionally
   carries monotonic wall-clock nanoseconds and a parent link, so a
   distributed run can be read as a latency tree.  The recorder is a
   plain value handed to whoever wants to stamp (network, transports,
   trackers); when none is attached nothing here runs, which is what
   keeps golden logical traces free of wall-clock noise. *)

type ctx = { trace_id : int64; span_id : int64; parent_id : int64 }

let root_parent = 0L

type t = {
  trace_id : int64;
  mutable next_id : int64;  (* next span id to hand out; 0 is "no parent" *)
  clock : unit -> int64;
  emit : Event.t -> unit;
  mutable metrics : Metrics.t option;
  mutable last_ns : int64;  (* monotonic clamp over a possibly-stepping clock *)
  mutable current_parent : int64;  (* innermost open span, for children *)
}

let create ?(trace_id = 1L) ?metrics ~clock ~emit () =
  {
    trace_id;
    next_id = 1L;
    clock;
    emit;
    metrics;
    last_ns = 0L;
    current_parent = 0L;
  }

let trace_id t = t.trace_id
let set_metrics t m = t.metrics <- m
let metrics t = t.metrics

let fresh_id t =
  let id = t.next_id in
  t.next_id <- Int64.add id 1L;
  id

let current_parent t = t.current_parent
let set_current_parent t id = t.current_parent <- id

(* Wall clocks can step backwards (NTP); durations must not.  Clamp to
   the last value handed out so [now] is monotone non-decreasing. *)
let now t =
  let n = t.clock () in
  let n = if Int64.compare n t.last_ns < 0 then t.last_ns else n in
  t.last_ns <- n;
  n

(* Histogram of span durations by name, in nanoseconds.  2^7 ns .. 2^34
   ns covers 128 ns to ~17 s, the full range from a frame decode to a
   stalled socket exchange. *)
let duration_hist m name =
  Metrics.histogram m ~help:"span durations by span name, nanoseconds"
    ~labels:[ ("span", name) ]
    ~min_exp:7 ~max_exp:34 "wd_span_duration_ns"

let observe_ns t ~name ns =
  match t.metrics with
  | None -> ()
  | Some m -> Metrics.observe (duration_hist m name) (Int64.to_float ns)

(* Record one finished span as a trace event.  Duration histograms are
   fed by the metrics *sink* when it sees the event (so replayed traces
   produce the same histograms as live runs, and nothing double-counts);
   [observe_ns] is only for stamps that never become events.  [span_id]
   defaults to a fresh id (pass one to report a span whose id was
   already shipped to a peer); [end_ns] defaults to the current clock. *)
let finish t ~name ?site ?(parent = root_parent) ?span_id ?end_ns ~time
    ~start_ns () =
  let span_id = match span_id with Some id -> id | None -> fresh_id t in
  let end_ns = match end_ns with Some e -> e | None -> now t in
  t.emit
    {
      Event.time;
      kind =
        Event.Span
          {
            name;
            site;
            trace_id = t.trace_id;
            span_id;
            parent_id = parent;
            start_ns;
            end_ns;
          };
    };
  { trace_id = t.trace_id; span_id; parent_id = parent }
