(** JSONL codec for {!Event.t} traces.

    Each event is one flat JSON object on one line, discriminated by the
    ["ev"] field (see {!Event.kind_name}) and stamped with ["t"], the
    emitter's update index.  Example:

    {v
    {"t":0,"ev":"run_meta","run":"dc-LS-seed42","protocol":"dc","algorithm":"LS","sites":4,"cost_model":"unicast"}
    {"t":137,"ev":"threshold_crossed","site":2,"estimate":96.0,"threshold":93.1}
    {"t":137,"ev":"sketch_sent","site":2,"bytes":84,"items":10}
    {"t":137,"ev":"message","dir":"up","site":2,"payload":80,"bytes":84}
    v}

    Decoding is strict on structure (unknown ["ev"] tags and missing
    fields are errors) but tolerant of extra fields, so traces stay
    forward-extensible. *)

val to_json : Event.t -> Json.t
val of_json : Json.t -> (Event.t, string) result

val encode_line : Event.t -> string
(** One JSON object, no trailing newline. *)

val decode_line : string -> (Event.t, string) result

val read_file : string -> (Event.t list, string) result
(** Read a whole JSONL trace (blank lines skipped); the error names the
    offending line number.  Raises [Sys_error] if the file cannot be
    opened. *)

val fold_file :
  f:('a -> Event.t -> 'a) -> init:'a -> string -> ('a, string) result
(** Streaming variant of {!read_file}. *)

val fold_channel :
  ?name:string ->
  f:('a -> Event.t -> 'a) ->
  init:'a ->
  in_channel ->
  ('a, string) result
(** {!fold_file} over an already-open channel (e.g. stdin); [name] is
    used in error messages (default ["<channel>"]).  The channel is not
    closed. *)
