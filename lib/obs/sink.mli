(** Pluggable trace-event sinks.

    Every instrumented component holds a sink (default {!null}) and emits
    {!Event.t}s through it.  Instrumentation sites must guard event
    construction with {!enabled}:

    {[
      if Sink.enabled sink then
        Sink.emit sink { Event.time; kind = Message { ... } }
    ]}

    so the disabled path costs one call and one branch — no allocation —
    on the hot update path.

    Available sinks:
    - {!null}: drops everything; {!enabled} is [false].
    - {!ring}: bounded in-memory ring buffer keeping the most recent
      events (for tests, live inspection, and post-mortems).
    - {!jsonl}: buffered JSONL file writer (one event per line, see
      {!Trace}); call {!close} (or at least {!flush}) when done.
    - {!metrics}: folds events into a {!Metrics.t} registry — message and
      byte counters per direction and site, payload-size and sketch-size
      histograms, inter-send update-gap histograms, estimate/level
      gauges.
    - {!fanout}: duplicates each event to several sinks. *)

type t

val null : t

val ring : capacity:int -> t
(** Keeps the last [capacity] events.  Requires [capacity >= 1]. *)

val jsonl : ?buffer_bytes:int -> string -> t
(** [jsonl path] opens (truncates) [path] and writes events as JSONL,
    buffered in memory up to [buffer_bytes] (default 64 KiB) between
    writes.  Raises [Sys_error] if the file cannot be created. *)

val metrics : Metrics.t -> t
(** Events update instruments registered under the [wd_] prefix in the
    given registry; see the module comment. *)

val fanout : t list -> t

val enabled : t -> bool
(** [false] only when emitting cannot have any effect ({!null}, or a
    fanout of disabled sinks). *)

val emit : t -> Event.t -> unit

val flush : t -> unit
(** Push buffered JSONL bytes to the OS.  No-op for other sinks. *)

val close : t -> unit
(** Flush and close any underlying channel.  Idempotent; emitting to a
    closed JSONL sink raises. *)

val ring_contents : t -> Event.t list
(** The buffered events, oldest first.  Raises [Invalid_argument] when
    the sink is not a {!ring}. *)
