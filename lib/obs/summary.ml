open Event

type site_row = {
  site : int;
  s_msgs_up : int;
  s_bytes_up : int;
  s_msgs_down : int;
  s_bytes_down : int;
  s_sketch_sends : int;
  s_item_sends : int;
  s_count_sends : int;
  s_crossings : int;
  s_resyncs : int;
  s_drops : int;
  s_duplicates : int;
  s_retries : int;
  s_crashes : int;
  s_recovers : int;
  s_mean_send_gap : float;
}

type phase_row = {
  phase : int;
  p_from : int;
  p_to : int;
  p_events : int;
  p_bytes_up : int;
  p_bytes_down : int;
  p_sends : int;
  p_crossings : int;
  p_estimate : float option;
}

type span_stat = {
  sp_count : int;
  sp_p50_ns : float;
  sp_p90_ns : float;
  sp_max_ns : float;
}

type view_row = {
  v_index : int;
  v_label : string;
  v_spec : string;
  v_estimate : float;
  v_routed : int;
  v_bytes : int;
}

type t = {
  run : (string * string) list;
  events : int;
  updates : int;
  msgs_up : int;
  msgs_down : int;
  bytes_up : int;
  bytes_down : int;
  medium_bytes : int;
  broadcasts : int;
  level : int;
  first_estimate : float option;
  last_estimate : float option;
  drops : int;
  dropped_bytes : int;
  duplicates : int;
  duplicate_bytes : int;
  retries : int;
  forwards : int;
  forward_bytes : int;
  crashes : int;
  recovers : int;
  degraded_sites : int list;
  kind_counts : (string * int) list;
  sites : site_row list;
  span_stats : (string * span_stat) list;
  views : view_row list;
}

(* Mutable per-site accumulator. *)
type acc = {
  mutable a_msgs_up : int;
  mutable a_bytes_up : int;
  mutable a_msgs_down : int;
  mutable a_bytes_down : int;
  mutable a_sketch_sends : int;
  mutable a_item_sends : int;
  mutable a_count_sends : int;
  mutable a_crossings : int;
  mutable a_resyncs : int;
  mutable a_drops : int;
  mutable a_duplicates : int;
  mutable a_retries : int;
  mutable a_crashes : int;
  mutable a_recovers : int;
  mutable a_last_send : int;
  mutable a_gap_total : int;
  mutable a_gaps : int;
}

let fresh_acc () =
  {
    a_msgs_up = 0;
    a_bytes_up = 0;
    a_msgs_down = 0;
    a_bytes_down = 0;
    a_sketch_sends = 0;
    a_item_sends = 0;
    a_count_sends = 0;
    a_crossings = 0;
    a_resyncs = 0;
    a_drops = 0;
    a_duplicates = 0;
    a_retries = 0;
    a_crashes = 0;
    a_recovers = 0;
    a_last_send = -1;
    a_gap_total = 0;
    a_gaps = 0;
  }

(* A unicast-emulated broadcast reaches sites [0 .. k-1] minus [except],
   where [k] is recoverable from the event itself. *)
let broadcast_unicast_recipients ~except ~recipients =
  let k = recipients + (match except with Some _ -> 1 | None -> 0) in
  List.filter
    (fun s -> Some s <> except)
    (List.init k (fun s -> s))

let of_events events =
  let sites : (int, acc) Hashtbl.t = Hashtbl.create 16 in
  let site_acc s =
    match Hashtbl.find_opt sites s with
    | Some a -> a
    | None ->
      let a = fresh_acc () in
      Hashtbl.replace sites s a;
      a
  in
  let note_send a time =
    if a.a_last_send >= 0 then begin
      a.a_gap_total <- a.a_gap_total + (time - a.a_last_send);
      a.a_gaps <- a.a_gaps + 1
    end;
    a.a_last_send <- time
  in
  let kinds : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let run = ref [] in
  let n_events = ref 0 in
  let updates = ref 0 in
  let msgs_up = ref 0 and msgs_down = ref 0 in
  let bytes_up = ref 0 and bytes_down = ref 0 in
  let medium = ref 0 in
  let broadcasts = ref 0 in
  let level = ref 0 in
  let first_estimate = ref None and last_estimate = ref None in
  let drops = ref 0 and dropped_bytes = ref 0 in
  let duplicates = ref 0 and duplicate_bytes = ref 0 in
  let retries = ref 0 in
  let forwards = ref 0 and forward_bytes = ref 0 in
  let crashes = ref 0 and recovers = ref 0 in
  let span_durs : (string, float list ref) Hashtbl.t = Hashtbl.create 8 in
  let view_rows = ref [] in
  List.iter
    (fun ev ->
      incr n_events;
      if ev.time > !updates then updates := ev.time;
      let name = kind_name ev.kind in
      Hashtbl.replace kinds name
        (1 + Option.value (Hashtbl.find_opt kinds name) ~default:0);
      match ev.kind with
      | Run_meta { run_id; protocol; algorithm; sites = k; cost_model } ->
        run :=
          [
            ("run", run_id);
            ("protocol", protocol);
            ("algorithm", algorithm);
            ("sites", string_of_int k);
            ("cost model", cost_model);
          ]
      | Message { dir = Up; site; bytes; _ } ->
        incr msgs_up;
        bytes_up := !bytes_up + bytes;
        let a = site_acc site in
        a.a_msgs_up <- a.a_msgs_up + 1;
        a.a_bytes_up <- a.a_bytes_up + bytes
      | Message { dir = Down; site; bytes; _ } ->
        incr msgs_down;
        bytes_down := !bytes_down + bytes;
        let a = site_acc site in
        a.a_msgs_down <- a.a_msgs_down + 1;
        a.a_bytes_down <- a.a_bytes_down + bytes
      | Broadcast { except; bytes; messages; recipients; _ } ->
        incr broadcasts;
        msgs_down := !msgs_down + messages;
        bytes_down := !bytes_down + bytes;
        if messages = recipients && recipients > 0 then
          (* Unicast emulation: split the charge across recipients. *)
          let share = bytes / recipients in
          List.iter
            (fun s ->
              let a = site_acc s in
              a.a_msgs_down <- a.a_msgs_down + 1;
              a.a_bytes_down <- a.a_bytes_down + share)
            (broadcast_unicast_recipients ~except ~recipients)
        else
          (* Radio model: one copy on the shared medium, no single owner. *)
          medium := !medium + bytes
      | Sketch_sent { site; items; _ } ->
        let a = site_acc site in
        (match items with
        | Some _ -> a.a_item_sends <- a.a_item_sends + 1
        | None -> a.a_sketch_sends <- a.a_sketch_sends + 1);
        note_send a ev.time
      | Count_sent { site; _ } ->
        let a = site_acc site in
        a.a_count_sends <- a.a_count_sends + 1;
        note_send a ev.time
      | Threshold_crossed { site; _ } ->
        let a = site_acc site in
        a.a_crossings <- a.a_crossings + 1
      | Estimate_update { estimate; _ } ->
        if !first_estimate = None then first_estimate := Some estimate;
        last_estimate := Some estimate
      | Level_advance { level = l; _ } -> if l > !level then level := l
      | Resync { site; _ } ->
        let a = site_acc site in
        a.a_resyncs <- a.a_resyncs + 1
      | Drop { dir; site; bytes; _ } ->
        incr drops;
        dropped_bytes := !dropped_bytes + bytes;
        let a = site_acc site in
        a.a_drops <- a.a_drops + 1;
        (* Lost transmissions were still charged to the sender's link
           (bytes = 0 for radio reception losses, already on the medium). *)
        (match dir with
        | Up ->
          if bytes > 0 then begin
            incr msgs_up;
            bytes_up := !bytes_up + bytes;
            a.a_msgs_up <- a.a_msgs_up + 1;
            a.a_bytes_up <- a.a_bytes_up + bytes
          end
        | Down ->
          if bytes > 0 then begin
            incr msgs_down;
            bytes_down := !bytes_down + bytes;
            a.a_msgs_down <- a.a_msgs_down + 1;
            a.a_bytes_down <- a.a_bytes_down + bytes
          end)
      | Duplicate { dir; site; bytes; copies } ->
        duplicates := !duplicates + copies;
        duplicate_bytes := !duplicate_bytes + bytes;
        let a = site_acc site in
        a.a_duplicates <- a.a_duplicates + copies;
        (match dir with
        | Up ->
          msgs_up := !msgs_up + copies;
          bytes_up := !bytes_up + bytes;
          a.a_msgs_up <- a.a_msgs_up + copies;
          a.a_bytes_up <- a.a_bytes_up + bytes
        | Down ->
          msgs_down := !msgs_down + copies;
          bytes_down := !bytes_down + bytes;
          a.a_msgs_down <- a.a_msgs_down + copies;
          a.a_bytes_down <- a.a_bytes_down + bytes)
      | Retry { site; _ } ->
        incr retries;
        let a = site_acc site in
        a.a_retries <- a.a_retries + 1
      | Forward { bytes; _ } ->
        (* Backbone hops are charged to the ledger's backbone counters,
           not to any site link, so they stay out of the per-direction
           byte totals the reconciliation laws check. *)
        incr forwards;
        forward_bytes := !forward_bytes + bytes
      | Crash { site } ->
        incr crashes;
        let a = site_acc site in
        a.a_crashes <- a.a_crashes + 1
      | Recover { site; _ } ->
        incr recovers;
        let a = site_acc site in
        a.a_recovers <- a.a_recovers + 1
      | Span { name; start_ns; end_ns; _ } ->
        let durs =
          match Hashtbl.find_opt span_durs name with
          | Some d -> d
          | None ->
            let d = ref [] in
            Hashtbl.replace span_durs name d;
            d
        in
        durs := Int64.to_float (Int64.sub end_ns start_ns) :: !durs
      | View_report { index; label; spec; estimate; routed; bytes } ->
        view_rows :=
          {
            v_index = index;
            v_label = label;
            v_spec = spec;
            v_estimate = estimate;
            v_routed = routed;
            v_bytes = bytes;
          }
          :: !view_rows)
    events;
  let site_rows =
    Hashtbl.fold
      (fun site a rows ->
        {
          site;
          s_msgs_up = a.a_msgs_up;
          s_bytes_up = a.a_bytes_up;
          s_msgs_down = a.a_msgs_down;
          s_bytes_down = a.a_bytes_down;
          s_sketch_sends = a.a_sketch_sends;
          s_item_sends = a.a_item_sends;
          s_count_sends = a.a_count_sends;
          s_crossings = a.a_crossings;
          s_resyncs = a.a_resyncs;
          s_drops = a.a_drops;
          s_duplicates = a.a_duplicates;
          s_retries = a.a_retries;
          s_crashes = a.a_crashes;
          s_recovers = a.a_recovers;
          s_mean_send_gap =
            (if a.a_gaps > 0 then
               Float.of_int a.a_gap_total /. Float.of_int a.a_gaps
             else Float.nan);
        }
        :: rows)
      sites []
    |> List.sort (fun a b -> compare a.site b.site)
  in
  let kind_counts =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) kinds []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let span_stats =
    (* Nearest-rank quantiles are plenty for a trace digest. *)
    let quantile sorted q =
      let n = Array.length sorted in
      sorted.(min (n - 1) (Float.to_int (q *. Float.of_int n)))
    in
    Hashtbl.fold
      (fun name durs acc ->
        let sorted = Array.of_list !durs in
        Array.sort compare sorted;
        let n = Array.length sorted in
        ( name,
          {
            sp_count = n;
            sp_p50_ns = quantile sorted 0.5;
            sp_p90_ns = quantile sorted 0.9;
            sp_max_ns = sorted.(n - 1);
          } )
        :: acc)
      span_durs []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  {
    run = !run;
    events = !n_events;
    updates = !updates;
    msgs_up = !msgs_up;
    msgs_down = !msgs_down;
    bytes_up = !bytes_up;
    bytes_down = !bytes_down;
    medium_bytes = !medium;
    broadcasts = !broadcasts;
    level = !level;
    first_estimate = !first_estimate;
    last_estimate = !last_estimate;
    drops = !drops;
    dropped_bytes = !dropped_bytes;
    duplicates = !duplicates;
    duplicate_bytes = !duplicate_bytes;
    retries = !retries;
    forwards = !forwards;
    forward_bytes = !forward_bytes;
    crashes = !crashes;
    recovers = !recovers;
    degraded_sites =
      (* A site still inside a crash window at end-of-trace is degraded. *)
      List.filter_map
        (fun r -> if r.s_crashes > r.s_recovers then Some r.site else None)
        site_rows;
    kind_counts;
    sites = site_rows;
    span_stats;
    views = List.sort (fun a b -> compare a.v_index b.v_index) !view_rows;
  }

let phases ~n events =
  if n < 1 then invalid_arg "Summary.phases: n must be >= 1";
  match events with
  | [] -> []
  | events ->
    let updates =
      List.fold_left (fun acc ev -> max acc ev.time) 0 events
    in
    let updates = max updates 1 in
    let span = (updates + n - 1) / n in
    let span = max span 1 in
    let rows =
      Array.init n (fun i ->
          {
            phase = i;
            p_from = (i * span) + 1;
            p_to = min updates ((i + 1) * span);
            p_events = 0;
            p_bytes_up = 0;
            p_bytes_down = 0;
            p_sends = 0;
            p_crossings = 0;
            p_estimate = None;
          })
    in
    List.iter
      (fun ev ->
        (* Update index 0 (run metadata) counts into the first phase. *)
        let idx = min (n - 1) (max 0 ((ev.time - 1) / span)) in
        let r = rows.(idx) in
        let r = { r with p_events = r.p_events + 1 } in
        let r =
          match ev.kind with
          | Message { dir = Up; bytes; _ } ->
            { r with p_bytes_up = r.p_bytes_up + bytes }
          | Message { dir = Down; bytes; _ } | Broadcast { bytes; _ } ->
            { r with p_bytes_down = r.p_bytes_down + bytes }
          | Sketch_sent _ | Count_sent _ -> { r with p_sends = r.p_sends + 1 }
          | Threshold_crossed _ ->
            { r with p_crossings = r.p_crossings + 1 }
          | Estimate_update { estimate; _ } ->
            { r with p_estimate = Some estimate }
          | Drop { dir = Up; bytes; _ } | Duplicate { dir = Up; bytes; _ } ->
            { r with p_bytes_up = r.p_bytes_up + bytes }
          | Drop { dir = Down; bytes; _ } | Duplicate { dir = Down; bytes; _ }
            -> { r with p_bytes_down = r.p_bytes_down + bytes }
          | Run_meta _ | Level_advance _ | Resync _ | Retry _ | Forward _
          | Crash _ | Recover _ | Span _ | View_report _ -> r
        in
        rows.(idx) <- r)
      events;
    Array.to_list rows
