(** A bundled duplicate-resilient monitoring service.

    One [Monitor.t] wires together, for a single site topology, the three
    trackers the paper composes in Section 6 — a distinct-count tracker,
    a distinct-sample tracker, and (optionally) a distinct heavy-hitter
    structure — behind the full query menu:

    - how many distinct events have occurred ({!distinct});
    - how many events are unique / the whole inverse distribution of
      duplication ({!unique}, {!duplication_fraction},
      {!median_duplication});
    - which keys are associated with the most distinct partners
      ({!top_keys}, {!key_degree}).

    Feed unkeyed events with {!observe}; feed keyed events (e.g.
    (objectID, clientID) requests) with {!observe_pair}, which tracks the
    pair as a distinct event {e and} updates the heavy-hitter structure.
    All queries are answered continuously from coordinator state; the
    communication spent so far is always available ({!total_bytes},
    {!bytes_breakdown}). *)

type config = {
  sites : int;
  epsilon : float;  (** distinct-count error budget *)
  confidence : float;
  theta_fraction : float;  (** lag share of [epsilon] *)
  sample_threshold : int;  (** distinct-sample size T *)
  sample_theta : float;  (** count-lag budget of the sampler *)
  dc_algorithm : Wd_protocol.Dc_tracker.algorithm;
  ds_algorithm : Wd_protocol.Ds_tracker.algorithm;
  hh : Wd_aggregate.Fm_array.config option;
      (** heavy-hitter array shape; [None] disables {!observe_pair}'s
          ranking (pairs are still counted as events) *)
  hh_algorithm : Wd_protocol.Dc_tracker.algorithm;
  cost_model : Wd_net.Network.cost_model;
  seed : int;
  faults : Wd_net.Faults.plan;
      (** fault-injection plan applied to the distinct-count and
          distinct-sample networks ({!Wd_net.Faults.none} disables it) *)
  staleness_bound : int;
      (** updates a site may spend inside a crash window before the
          monitor reports it {!Degraded} *)
}

val default_config : sites:int -> config
(** LS + LCO at the paper's preferred settings (epsilon 0.1, theta
    fraction 0.15, T = 1000, a 3x256x12 heavy-hitter array), no faults,
    staleness bound 5000 updates. *)

type status = Healthy | Degraded of int list
    (** [Degraded sites] lists sites partitioned (crashed and not yet
        recovered) for longer than {!config.staleness_bound} updates;
        their contributions are frozen at the last synchronization, so
        answers may under-count until they resync. *)

type t

val create :
  ?transport:(label:string -> sites:int -> Wd_net.Transport.t) -> config -> t
(** Raises [Invalid_argument] on inconsistent settings (via the
    underlying constructors).  [transport] is a factory called once per
    tracker (labels ["distinct-count"], ["distinct-sample"],
    ["heavy-hitters"]) to supply each communication backend; the default
    builds a fresh in-process simulator ({!Wd_net.Transport_sim}) per
    tracker with [config.cost_model], which is the pre-transport
    behaviour byte for byte. *)

val close : t -> unit
(** Close every tracker's transport ({!Wd_net.Transport.close}): a
    no-op on simulator backends, the finish/stats exchange on socket
    backends.  Idempotent; queries remain answerable afterwards. *)

val config : t -> config

val attach_sink : t -> Wd_obs.Sink.t -> unit
(** Attach one trace sink to all three trackers and their byte ledgers,
    so the sink sees both protocol-decision events and every message.
    The default is the null sink (no overhead). *)

(** {1 Feeding} *)

val observe : t -> site:int -> int -> unit
(** One unkeyed event at a site. *)

val observe_pair : t -> site:int -> v:int -> w:int -> unit
(** One keyed event: the pair is tracked as a distinct event, and [v]'s
    distinct-partner degree is updated when the heavy-hitter structure is
    enabled. *)

(** {1 Queries} — all continuous, no communication triggered. *)

val distinct : t -> float
(** Estimated number of distinct events. *)

val unique : t -> float
(** Estimated number of events observed exactly once. *)

val sample : t -> (int * int) list
(** The current distinct sample with approximate global counts. *)

val median_duplication : t -> int option

val duplication_fraction : t -> (int -> bool) -> float
(** Fraction of distinct events whose occurrence count satisfies the
    predicate. *)

val top_keys : t -> k:int -> (int * float) list
(** Keys by estimated distinct-partner degree; empty when the
    heavy-hitter structure is disabled. *)

val key_degree : t -> int -> float
(** [0] when the heavy-hitter structure is disabled. *)

(** {1 Health} *)

val status : t -> status
(** {!Healthy}, or the sorted list of sites down past the staleness
    bound on either core tracker.  Computed generically over the packed
    {!Wd_protocol.Tracker_intf.packed} views of the core trackers. *)

val lost_updates : t -> int
(** Stream arrivals discarded across both core trackers because their
    site was inside a crash window. *)

(** {1 Accounting} *)

val total_bytes : t -> int

val bytes_breakdown : t -> (string * int) list
(** Per-tracker byte totals: [("distinct-count", _); ("distinct-sample",
    _); ("heavy-hitters", _)]. *)
