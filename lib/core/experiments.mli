(** Reproductions of every figure in the paper's experimental evaluation
    (Section 7), plus ablations of the design choices called out in
    DESIGN.md.

    Each harness regenerates the data behind one figure panel and returns
    it as a printable {!table}: the workload, the parameter sweep, the
    baselines and the measured communication-cost ratios or error
    distributions the paper plots.  Absolute byte counts depend on the
    synthetic trace substitution (see DESIGN.md); the reproduction targets
    are the {e shapes}: protocol orderings, orders of magnitude saved,
    optimum positions, linearity/decay trends.

    All randomness is seeded: rerunning a harness reproduces its table
    bit for bit. *)

type options = {
  scale : float;
      (** workload scale factor: 1.0 is the calibrated default (~2x10^5
          HTTP requests), 10.0 approaches paper scale *)
  seed : int;
  epsilon : float;  (** total error budget (paper: 0.1) *)
  confidence : float;  (** 1 - delta (paper: 0.9) *)
}

val default_options : options

type table = {
  id : string;  (** e.g. "fig5a" *)
  title : string;
  params : (string * string) list;
  header : string list;
  rows : Report.cell list list;
}

val print : table -> unit
(** Render the table (title, parameter block, aligned rows) to stdout. *)

(** {1 Figure 5 — distinct count tracking} *)

val fig5a : ?options:options -> unit -> table
(** Relative communication cost vs lag fraction theta/epsilon, HTTP
    (clientID, objectID) pairs, 4 region sites, NS/SC/SS/LS. *)

val fig5b : ?options:options -> unit -> table
(** Cost ratio vs number of updates, HTTP pairs, 4 sites, per-algorithm
    optimal theta. *)

val fig5c : ?options:options -> unit -> table
(** Same as 5(b) with 29 server sites.  The paper omits SS ("cost is too
    high"); we include it flagged so the blow-up is visible. *)

val fig5d : ?options:options -> unit -> table
(** Cumulative distribution of the coordinator's relative error, sampled
    continuously; target: error <= epsilon at least 1 - delta of the
    time. *)

val fig5e : ?options:options -> unit -> table
(** Cost vs theta on the synthetic two-phase data, 20 sites. *)

val fig5f : ?options:options -> unit -> table
(** Cost ratio vs updates on the synthetic two-phase data. *)

(** {1 Figure 6 — distinct sample tracking} *)

val fig6a : ?options:options -> unit -> table
(** Cost ratio vs sample size T, HTTP pairs, LCO/GCS/LCS vs EDS. *)

val fig6b : ?options:options -> unit -> table
(** Cost ratio vs T on the synthetic two-phase data (the level-doubling
    discontinuities the paper remarks on appear here). *)

val fig6c : ?options:options -> unit -> table
(** Cost ratio vs theta on the heavily duplicated clientID-only view. *)

(** {1 Figure 7 — duplicate-resilient aggregates} *)

val fig7a : ?options:options -> unit -> table
(** Accuracy of the number-of-unique-events estimate vs sample size. *)

val fig7b : ?options:options -> unit -> table
(** Accuracy of the median-duplication estimate vs sample size. *)

val fig7c : ?options:options -> unit -> table
(** Distinct heavy hitters over (objectID, clientID): communication by
    algorithm with a ~1500-cell FM array, accuracy of the degree
    estimates. *)

(** {1 Ablations} *)

val ablation_radio : ?options:options -> unit -> table
(** Unicast vs radio-broadcast cost models (Section 7.2's remark that SS
    wins under broadcast pricing). *)

val ablation_radio_ds : ?options:options -> unit -> table
(** The same cost-model comparison for the distinct-sample protocols
    (GCS is the broadcast-shaped one there). *)

val ablation_sketch_type : ?options:options -> unit -> table
(** FM vs BJKST vs HyperLogLog under the same tracking protocol
    (Section 4.2's "any mergeable distinct sketch works"). *)

val ablation_fm_variant : ?options:options -> unit -> table
(** Paper-style averaged FM vs stochastic-averaging FM. *)

val ablation_batching : ?options:options -> unit -> table
(** Effect of the Section 4.2 exact-items communication optimization. *)

val ablation_quantiles : ?options:options -> unit -> table
(** Duplicate-resilient quantile tracking (footnote 3 extension): cost
    and median accuracy per algorithm. *)

val ablation_resilience : ?options:options -> unit -> table
(** The motivating contrast: Space-Saving frequency heavy hitters get
    fooled by duplicated requests (bot traffic); the paper's distinct
    heavy hitters do not. *)

val ext_windows : ?options:options -> unit -> table
(** Sliding-window distinct tracking (Section 8 extension): cost and
    accuracy on a drifting-universe workload. *)

val ext_predictive : ?options:options -> unit -> table
(** Prediction-model tracking (Section 8 extension): linear-growth
    models vs the static-band protocols on steady-growth data. *)

val ext_scaling : ?options:options -> unit -> table
(** Cost ratios across workload scales: the savings grow with the
    stream because protocol state is scale-independent. *)

val ext_topology : ?options:options -> unit -> table
(** Tree-topology extension: one stream routed through flat, depth-2
    and depth-3 aggregation trees — site-link traffic is invariant,
    the backbone surcharge grows with depth. *)

(** {1 Suites} *)

val all : ?options:options -> unit -> table list
(** Every figure and ablation, in paper order. *)

val by_id : string -> (options -> table) option
(** Look up a harness by its [id] ("fig5a", ..., "ablation_radio"). *)

val ids : string list
