module Stream = Wd_workload.Stream
module Http = Wd_workload.Http_trace
module Two_phase = Wd_workload.Two_phase
module Dc = Wd_protocol.Dc_tracker
module Ds = Wd_protocol.Ds_tracker
module Network = Wd_net.Network
module Rng = Wd_hashing.Rng
module Duplication = Wd_aggregate.Duplication
module Query = Wd_view.Query
open Report

type options = { scale : float; seed : int; epsilon : float; confidence : float }

let default_options = { scale = 1.0; seed = 42; epsilon = 0.1; confidence = 0.9 }

(* Unified-run projections: the protocol-specific extras live in [aux]. *)
let ds_level_sample (r : Simulation.run) =
  match r.Simulation.aux with
  | Simulation.Ds_aux { level; sample; _ } -> (level, sample)
  | _ -> invalid_arg "ds_level_sample: not a DS run"

let hh_extras (r : Simulation.run) =
  match r.Simulation.aux with
  | Simulation.Hh_aux { avg_norm_error; topk_recall; exact_bytes } ->
    (avg_norm_error, topk_recall, exact_bytes)
  | _ -> invalid_arg "hh_extras: not an HH run"

type table = {
  id : string;
  title : string;
  params : (string * string) list;
  header : string list;
  rows : Report.cell list list;
}

let print t =
  Report.print_section (Printf.sprintf "%s: %s" t.id t.title);
  Report.print_kv t.params;
  print_newline ();
  Report.print_table ~header:t.header t.rows;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Workloads *)

let http_config o = Http.scaled ~seed:o.seed o.scale

let http_stream o item_view site_view =
  let cfg = http_config o in
  Http.view cfg item_view site_view (Http.generate cfg)

let two_phase_stream o =
  let per_site = max 20 (int_of_float (250.0 *. o.scale)) in
  Two_phase.generate ~seed:o.seed ~sites:20 ~per_site ()

(* The sample-size sweeps need a universe comfortably above the largest
   T (3000), or the sampler degenerates to "keep everything" and the
   count-sharing algorithms drown in broadcast churn. *)
let two_phase_stream_ds o =
  let per_site = max 1_000 (int_of_float (1_000.0 *. o.scale)) in
  Two_phase.generate ~seed:o.seed ~sites:20 ~per_site ()

let pct f = Printf.sprintf "%.0f%%" (100.0 *. f)

let common_params o workload =
  [
    ("workload", workload);
    ("epsilon", Printf.sprintf "%g" o.epsilon);
    ("confidence", pct o.confidence);
    ("scale", Printf.sprintf "%g" o.scale);
    ("seed", string_of_int o.seed);
  ]

(* Per-algorithm experimentally optimal lag fractions (Section 7.2: best
   theta is ~0.3 eps for most algorithms, ~0.15 eps for LS). *)
let optimal_theta_frac = function
  | Dc.NS | Dc.SC | Dc.SS -> 0.3
  | Dc.LS -> 0.15
  | Dc.EC -> 0.3

let dc_algo_cell a = S (Dc.algorithm_to_string a)

(* ------------------------------------------------------------------ *)
(* Figure 5: distinct count tracking *)

let theta_fracs = [ 0.05; 0.1; 0.15; 0.2; 0.3; 0.5; 0.7; 0.85 ]

(* Cost-vs-theta sweep shared by 5(a) and 5(e). *)
let dc_theta_sweep o stream =
  let exact = Simulation.exact_dc_bytes stream in
  let row frac =
    let theta = frac *. o.epsilon in
    let alpha = o.epsilon -. theta in
    let ratios =
      List.map
        (fun algorithm ->
          let r =
            Simulation.run ~seed:o.seed ~error_samples:1
              (Query.dc ~confidence:o.confidence ~theta ~alpha algorithm)
              stream
          in
          R (Float.of_int r.Simulation.total_bytes /. Float.of_int exact))
        Dc.approximate_algorithms
    in
    F frac :: ratios
  in
  ( [ "theta/eps"; "NS"; "SC"; "SS"; "LS" ],
    List.map row theta_fracs,
    exact )

let fig5a ?(options = default_options) () =
  let o = options in
  let stream = http_stream o Http.Client_object_pair Http.Per_region in
  let header, rows, exact = dc_theta_sweep o stream in
  {
    id = "fig5a";
    title = "DC: relative communication cost vs lag theta (HTTP pairs, 4 sites)";
    params =
      common_params o "HTTP (clientID, objectID) pairs, 4 region sites"
      @ [
          ("updates", string_of_int (Stream.length stream));
          ("distinct", string_of_int (Stream.distinct_count stream));
          ("exact (EC) bytes", string_of_int exact);
        ];
    header;
    rows;
  }

(* Cost-ratio-vs-updates series shared by 5(b), 5(c), 5(f). *)
let dc_progress_series o ?(algorithms = Dc.approximate_algorithms) stream =
  let checkpoints = 10 in
  let ec =
    Simulation.run ~seed:o.seed ~checkpoints ~error_samples:1
      (Query.dc ~theta:0.1 ~alpha:0.1 Dc.EC)
      stream
  in
  let runs =
    List.map
      (fun algorithm ->
        let frac = optimal_theta_frac algorithm in
        let theta = frac *. o.epsilon in
        let alpha = o.epsilon -. theta in
        ( algorithm,
          Simulation.run ~seed:o.seed ~checkpoints ~error_samples:1
            (Query.dc ~confidence:o.confidence ~theta ~alpha algorithm)
            stream ))
      algorithms
  in
  let rows =
    List.init checkpoints (fun i ->
        let updates, ec_bytes = ec.Simulation.bytes_series.(i) in
        I updates
        :: List.map
             (fun (_, r) ->
               let _, b = r.Simulation.bytes_series.(i) in
               R (Float.of_int b /. Float.of_int (max 1 ec_bytes)))
             runs)
  in
  let header =
    "updates" :: List.map (fun (a, _) -> Dc.algorithm_to_string a) runs
  in
  (header, rows)

let fig5b ?(options = default_options) () =
  let o = options in
  let stream = http_stream o Http.Client_object_pair Http.Per_region in
  let header, rows = dc_progress_series o stream in
  {
    id = "fig5b";
    title = "DC: cost ratio vs updates (HTTP pairs, 4 sites, per-algo optimal theta)";
    params = common_params o "HTTP pairs, 4 region sites";
    header;
    rows;
  }

let fig5c ?(options = default_options) () =
  let o = options in
  let stream = http_stream o Http.Client_object_pair Http.Per_server in
  let header, rows = dc_progress_series o stream in
  {
    id = "fig5c";
    title =
      "DC: cost ratio vs updates (HTTP pairs, 29 sites; paper omits SS as too costly)";
    params = common_params o "HTTP pairs, 29 server sites";
    header;
    rows;
  }

let fig5d ?(options = default_options) () =
  let o = options in
  let stream = http_stream o Http.Client_object_pair Http.Per_region in
  (* One common split for the accuracy comparison (the paper's 5(d) does
     not vary theta per algorithm). *)
  let theta = 0.3 *. o.epsilon in
  let alpha = o.epsilon -. theta in
  let runs =
    List.map
      (fun algorithm ->
        ( algorithm,
          Simulation.run ~seed:o.seed ~error_samples:400
            (Query.dc ~confidence:o.confidence ~theta ~alpha algorithm)
            stream ))
      Dc.approximate_algorithms
  in
  let sorted_errors =
    List.map
      (fun (_, r) ->
        let errs = Array.map snd r.Simulation.error_series in
        Array.sort Float.compare errs;
        errs)
      runs
  in
  let percentiles = [ 0.10; 0.25; 0.50; 0.75; 0.90; 0.95; 0.99 ] in
  let pct_row p =
    S (Printf.sprintf "p%02.0f" (100.0 *. p))
    :: List.map
         (fun errs ->
           let n = Array.length errs in
           F errs.(min (n - 1) (int_of_float (p *. Float.of_int n))))
         sorted_errors
  in
  let within_row =
    S "Pr[err <= eps]"
    :: List.map
         (fun errs ->
           let n = Array.length errs in
           let ok =
             Array.fold_left
               (fun acc e -> if e <= o.epsilon then acc + 1 else acc)
               0 errs
           in
           F (Float.of_int ok /. Float.of_int n))
         sorted_errors
  in
  {
    id = "fig5d";
    title = "DC: distribution of relative error at the coordinator";
    params =
      common_params o "HTTP pairs, 4 region sites"
      @ [ ("target", Printf.sprintf "err <= %g at least %s of the time"
             o.epsilon (pct o.confidence)) ];
    header = "percentile" :: List.map (fun (a, _) -> Dc.algorithm_to_string a) runs;
    rows = List.map pct_row percentiles @ [ within_row ];
  }

let fig5e ?(options = default_options) () =
  let o = options in
  let stream = two_phase_stream o in
  let header, rows, exact = dc_theta_sweep o stream in
  {
    id = "fig5e";
    title = "DC: relative communication cost vs lag theta (synthetic two-phase, 20 sites)";
    params =
      common_params o "two-phase synthetic, 20 sites"
      @ [
          ("updates", string_of_int (Stream.length stream));
          ("distinct", string_of_int (Stream.distinct_count stream));
          ("exact (EC) bytes", string_of_int exact);
        ];
    header;
    rows;
  }

let fig5f ?(options = default_options) () =
  let o = options in
  let stream = two_phase_stream o in
  let header, rows = dc_progress_series o stream in
  {
    id = "fig5f";
    title = "DC: cost ratio vs updates (synthetic two-phase, 20 sites)";
    params = common_params o "two-phase synthetic, 20 sites";
    header;
    rows;
  }

(* ------------------------------------------------------------------ *)
(* Figure 6: distinct sample tracking *)

let sample_sizes = [ 10; 30; 100; 300; 1_000; 3_000 ]

let ds_threshold_sweep o ~theta stream =
  let exact = Simulation.exact_ds_bytes stream in
  let row threshold =
    let ratios =
      List.map
        (fun algorithm ->
          let r =
            Simulation.run ~seed:o.seed
              (Query.ds ~theta ~threshold algorithm)
              stream
          in
          R (Float.of_int r.Simulation.total_bytes /. Float.of_int exact))
        Ds.approximate_algorithms
    in
    I threshold :: ratios
  in
  ([ "T"; "LCO"; "GCS"; "LCS" ], List.map row sample_sizes, exact)

let fig6a ?(options = default_options) () =
  let o = options in
  let theta = 0.25 in
  let stream = http_stream o Http.Client_object_pair Http.Per_region in
  let header, rows, exact = ds_threshold_sweep o ~theta stream in
  {
    id = "fig6a";
    title = "DS: cost ratio vs sample size T (HTTP pairs)";
    params =
      common_params o "HTTP pairs, 4 region sites"
      @ [
          ("theta", Printf.sprintf "%g" theta);
          ("exact (EDS) bytes", string_of_int exact);
        ];
    header;
    rows;
  }

let fig6b ?(options = default_options) () =
  let o = options in
  let theta = 0.25 in
  let stream = two_phase_stream_ds o in
  let header, rows, exact = ds_threshold_sweep o ~theta stream in
  {
    id = "fig6b";
    title = "DS: cost ratio vs sample size T (synthetic two-phase)";
    params =
      common_params o "two-phase synthetic, 20 sites"
      @ [
          ("theta", Printf.sprintf "%g" theta);
          ("exact (EDS) bytes", string_of_int exact);
        ];
    header;
    rows;
  }

let fig6c ?(options = default_options) () =
  let o = options in
  let threshold = 500 in
  let stream = http_stream o Http.Client_id Http.Per_region in
  let exact = Simulation.exact_ds_bytes stream in
  let thetas = [ 0.05; 0.1; 0.2; 0.4; 0.6; 0.8 ] in
  let row theta =
    let ratios =
      List.map
        (fun algorithm ->
          let r =
            Simulation.run ~seed:o.seed
              (Query.ds ~theta ~threshold algorithm)
              stream
          in
          R (Float.of_int r.Simulation.total_bytes /. Float.of_int exact))
        Ds.approximate_algorithms
    in
    F theta :: ratios
  in
  {
    id = "fig6c";
    title = "DS: cost ratio vs theta (high-duplication clientID view)";
    params =
      common_params o "HTTP clientIDs only, 4 region sites"
      @ [
          ("T", string_of_int threshold);
          ("duplication factor",
           Printf.sprintf "%.1f" (Stream.duplication_factor stream));
          ("exact (EDS) bytes", string_of_int exact);
        ];
    header = [ "theta"; "LCO"; "GCS"; "LCS" ];
    rows = List.map row thetas;
  }

(* ------------------------------------------------------------------ *)
(* Figure 7: duplicate-resilient aggregates *)

let fig7a ?(options = default_options) () =
  let o = options in
  let theta = 0.25 in
  let stream = http_stream o Http.Client_object_pair Http.Per_region in
  let exact_bytes = Simulation.exact_ds_bytes stream in
  let exact =
    let m = Stream.multiplicities stream in
    Hashtbl.fold (fun _ c acc -> if c = 1 then acc + 1 else acc) m 0
  in
  (* Smooth the level-quantization noise of a single sampler draw by
     averaging across independent hash seeds, as one would by repeating
     the experiment. *)
  let seeds = List.init 5 (fun i -> o.seed + (1_000 * i)) in
  let row threshold =
    let cells =
      List.concat_map
        (fun algorithm ->
          let runs =
            List.map
              (fun seed ->
                Simulation.run ~seed (Query.ds ~theta ~threshold algorithm)
                  stream)
              seeds
          in
          let avg_err =
            List.fold_left
              (fun acc r ->
                let level, sample = ds_level_sample r in
                let est = Duplication.unique_count ~level sample in
                acc
                +. (Float.abs (est -. Float.of_int exact)
                   /. Float.of_int exact))
              0.0 runs
            /. Float.of_int (List.length runs)
          in
          let avg_cost =
            List.fold_left
              (fun acc r -> acc + r.Simulation.total_bytes)
              0 runs
            / List.length runs
          in
          [ F avg_err; R (Float.of_int avg_cost /. Float.of_int exact_bytes) ])
        Ds.approximate_algorithms
    in
    I threshold :: cells
  in
  {
    id = "fig7a";
    title = "Unique-event (count = 1) estimate: relative error and cost vs T";
    params =
      common_params o "HTTP pairs, 4 region sites"
      @ [
          ("theta", Printf.sprintf "%g" theta);
          ("true unique events", string_of_int exact);
        ];
    header =
      [ "T"; "LCO err"; "LCO cost"; "GCS err"; "GCS cost"; "LCS err";
        "LCS cost" ];
    rows = List.map row sample_sizes;
  }

let fig7b ?(options = default_options) () =
  let o = options in
  let theta = 0.25 in
  let stream = http_stream o Http.Client_id Http.Per_region in
  let exact_median =
    let counts =
      Hashtbl.fold (fun _ c acc -> c :: acc) (Stream.multiplicities stream) []
      |> List.sort compare
    in
    List.nth counts (List.length counts / 2)
  in
  let seeds = List.init 5 (fun i -> o.seed + (1_000 * i)) in
  let row threshold =
    let cells =
      List.map
        (fun algorithm ->
          let errs =
            List.filter_map
              (fun seed ->
                let r =
                  Simulation.run ~seed (Query.ds ~theta ~threshold algorithm)
                    stream
                in
                Option.map
                  (fun est ->
                    Float.abs (Float.of_int (est - exact_median))
                    /. Float.of_int exact_median)
                  (Duplication.median_count (snd (ds_level_sample r))))
              seeds
          in
          match errs with
          | [] -> S "n/a"
          | _ ->
            F
              (List.fold_left ( +. ) 0.0 errs
              /. Float.of_int (List.length errs)))
        Ds.approximate_algorithms
    in
    I threshold :: cells
  in
  {
    id = "fig7b";
    title = "Median duplication estimate: relative error vs T";
    params =
      common_params o "HTTP clientIDs only, 4 region sites"
      @ [
          ("theta", Printf.sprintf "%g" theta);
          ("true median duplication", string_of_int exact_median);
        ];
    header = [ "T"; "LCO err"; "GCS err"; "LCS err" ];
    rows = List.map row sample_sizes;
  }

let fig7c ?(options = default_options) () =
  let o = options in
  let theta = 0.03 in
  let cfg = http_config o in
  let pairs =
    Simulation.pair_stream_of_requests cfg Http.Per_region (Http.generate cfg)
  in
  (* "a sketch containing about 1500 FM sketches, each of which consisted
     of 10 repetitions" *)
  let config = { Wd_aggregate.Fm_array.rows = 3; cols = 500; bitmaps = 10 } in
  let rows =
    List.map
      (fun algorithm ->
        let r =
          Simulation.run ~seed:o.seed
            (Query.hh ~config ~theta algorithm)
            (Simulation.stream_of_pairs pairs)
        in
        let avg_norm_error, topk_recall, exact_bytes = hh_extras r in
        [
          dc_algo_cell algorithm;
          I r.Simulation.total_bytes;
          R (Float.of_int r.Simulation.total_bytes /. Float.of_int exact_bytes);
          F avg_norm_error;
          F topk_recall;
        ])
      Dc.approximate_algorithms
  in
  {
    id = "fig7c";
    title =
      "Distinct heavy hitters over (objectID, clientID): cost and accuracy by algorithm";
    params =
      common_params o "HTTP (objectID, clientID) pairs, 4 region sites"
      @ [
          ("FM array",
           Printf.sprintf "%d x %d cells, %d bitmaps each (%d sketches)"
             config.rows config.cols config.bitmaps
             (config.rows * config.cols));
          ("theta", Printf.sprintf "%g" theta);
          ("updates", string_of_int (Simulation.pair_stream_length pairs));
        ];
    header = [ "algorithm"; "bytes"; "ratio vs exact"; "norm err (top-20)";
               "recall@20" ];
    rows;
  }

(* ------------------------------------------------------------------ *)
(* Ablations *)

let ablation_radio ?(options = default_options) () =
  let o = options in
  let stream = http_stream o Http.Client_object_pair Http.Per_region in
  let exact = Simulation.exact_dc_bytes stream in
  let frac = 0.3 in
  let theta = frac *. o.epsilon and alpha = (1.0 -. frac) *. o.epsilon in
  let rows =
    List.map
      (fun algorithm ->
        let run cost_model =
          let r =
            Simulation.run ~cost_model ~seed:o.seed ~error_samples:1
              (Query.dc ~theta ~alpha algorithm)
              stream
          in
          Float.of_int r.Simulation.total_bytes /. Float.of_int exact
        in
        [
          dc_algo_cell algorithm;
          R (run Network.Unicast);
          R (run Network.Radio_broadcast);
        ])
      Dc.approximate_algorithms
  in
  {
    id = "ablation_radio";
    title = "Cost model ablation: unicast vs radio broadcast (Section 7.2 remark)";
    params = common_params o "HTTP pairs, 4 region sites"
             @ [ ("theta/eps", Printf.sprintf "%g" frac) ];
    header = [ "algorithm"; "unicast ratio"; "radio ratio" ];
    rows;
  }

let ablation_radio_ds ?(options = default_options) () =
  let o = options in
  (* Count-sharing costs are broadcast-shaped, so the radio model should
     rehabilitate GCS the way it rehabilitates SS for sketches. *)
  let stream = http_stream o Http.Client_id Http.Per_region in
  let exact = Simulation.exact_ds_bytes stream in
  let theta = 0.25 and threshold = 500 in
  let rows =
    List.map
      (fun algorithm ->
        let run cost_model =
          let r =
            Simulation.run ~cost_model ~seed:o.seed
              (Query.ds ~theta ~threshold algorithm)
              stream
          in
          Float.of_int r.Simulation.total_bytes /. Float.of_int exact
        in
        [
          S (Ds.algorithm_to_string algorithm);
          R (run Network.Unicast);
          R (run Network.Radio_broadcast);
        ])
      Ds.approximate_algorithms
  in
  {
    id = "ablation_radio_ds";
    title = "Cost model ablation for distinct-sample tracking";
    params =
      common_params o "HTTP clientIDs only, 4 region sites"
      @ [ ("theta", Printf.sprintf "%g" theta); ("T", string_of_int threshold) ];
    header = [ "algorithm"; "unicast ratio"; "radio ratio" ];
    rows;
  }

let ext_scaling ?(options = default_options) () =
  let o = options in
  (* The savings regime grows with the workload: protocol state is
     scale-independent while the exact baseline is linear in the number
     of distinct items.  This is the lens through which the absolute
     ratios of the other experiments should be read (DESIGN.md). *)
  let theta = 0.3 *. o.epsilon and alpha = 0.7 *. o.epsilon in
  let scales = [ 0.1; 0.3; 1.0; 3.0 ] in
  let rows =
    List.map
      (fun s ->
        let stream =
          http_stream { o with scale = o.scale *. s } Http.Client_object_pair
            Http.Per_region
        in
        let exact = Simulation.exact_dc_bytes stream in
        let ratio algorithm =
          let r =
            Simulation.run ~seed:o.seed ~error_samples:1
              (Query.dc ~theta ~alpha algorithm)
              stream
          in
          Float.of_int r.Simulation.total_bytes /. Float.of_int exact
        in
        [
          F s;
          I (Stream.length stream);
          I (Stream.distinct_count stream);
          R (ratio Dc.NS);
          R (ratio Dc.LS);
        ])
      scales
  in
  {
    id = "ext_scaling";
    title = "Savings vs workload scale (protocol state is scale-independent)";
    params = common_params o "HTTP pairs, 4 region sites";
    header = [ "scale"; "updates"; "distinct"; "NS ratio"; "LS ratio" ];
    rows;
  }

let ablation_sketch_type ?(options = default_options) () =
  let o = options in
  let stream = http_stream o Http.Client_object_pair Http.Per_region in
  let exact = Simulation.exact_dc_bytes stream in
  let frac = 0.3 in
  let theta = frac *. o.epsilon and alpha = (1.0 -. frac) *. o.epsilon in
  let measure sketch =
    List.map
      (fun algorithm ->
        let r =
          Simulation.run ~seed:o.seed ~error_samples:1
            (Query.dc ~sketch ~theta ~alpha algorithm)
            stream
        in
        let err =
          Float.abs
            (r.Simulation.final_estimate
            -. Float.of_int r.Simulation.final_truth)
          /. Float.of_int r.Simulation.final_truth
        in
        [
          S (Query.sketch_to_string sketch);
          dc_algo_cell algorithm;
          R (Float.of_int r.Simulation.total_bytes /. Float.of_int exact);
          F err;
        ])
      [ Dc.NS; Dc.LS ]
  in
  let rows = measure Query.Fm @ measure Query.Bjkst @ measure Query.Hll in
  {
    id = "ablation_sketch_type";
    title = "Sketch-type ablation: any mergeable distinct sketch plugs in (Section 4.2)";
    params = common_params o "HTTP pairs, 4 region sites";
    header = [ "sketch"; "algorithm"; "cost ratio"; "final err" ];
    rows;
  }

let ablation_fm_variant ?(options = default_options) () =
  let o = options in
  let stream = http_stream o Http.Client_object_pair Http.Per_region in
  let exact = Simulation.exact_dc_bytes stream in
  let theta = 0.3 *. o.epsilon in
  let bitmaps = 64 in
  let rows =
    List.concat_map
      (fun (name, variant) ->
        List.map
          (fun algorithm ->
            let family =
              Wd_sketch.Fm.family_custom ~rng:(Rng.create o.seed) ~variant
                ~bitmaps
            in
            let r =
              Simulation.Dc_fm.run ~seed:o.seed ~family ~algorithm ~theta
                ~alpha:0.07 ~error_samples:1 stream
            in
            let err =
              Float.abs
                (r.Simulation.dc_final_estimate
                -. Float.of_int r.Simulation.dc_final_truth)
              /. Float.of_int r.Simulation.dc_final_truth
            in
            [
              S name;
              dc_algo_cell algorithm;
              R (Float.of_int r.Simulation.dc_total_bytes /. Float.of_int exact);
              F err;
            ])
          [ Dc.NS; Dc.LS ])
      [ ("averaged", Wd_sketch.Fm.Averaged);
        ("stochastic", Wd_sketch.Fm.Stochastic) ]
  in
  {
    id = "ablation_fm_variant";
    title = "FM update-discipline ablation: paper-style averaging vs PCSA";
    params =
      common_params o "HTTP pairs, 4 region sites"
      @ [ ("bitmaps", string_of_int bitmaps) ];
    header = [ "variant"; "algorithm"; "cost ratio"; "final err" ];
    rows;
  }

let ablation_batching ?(options = default_options) () =
  let o = options in
  let stream = http_stream o Http.Client_object_pair Http.Per_region in
  let exact = Simulation.exact_dc_bytes stream in
  let frac = 0.3 in
  let theta = frac *. o.epsilon and alpha = (1.0 -. frac) *. o.epsilon in
  let rows =
    List.map
      (fun algorithm ->
        let run item_batching =
          let r =
            Simulation.run ~item_batching ~seed:o.seed ~error_samples:1
              (Query.dc ~theta ~alpha algorithm)
              stream
          in
          Float.of_int r.Simulation.total_bytes /. Float.of_int exact
        in
        [ dc_algo_cell algorithm; R (run true); R (run false) ])
      Dc.approximate_algorithms
  in
  {
    id = "ablation_batching";
    title = "Section 4.2 optimization: ship exact new items while cheaper than a sketch";
    params = common_params o "HTTP pairs, 4 region sites";
    header = [ "algorithm"; "with batching"; "without" ];
    rows;
  }

let ablation_quantiles ?(options = default_options) () =
  let o = options in
  let module Dq = Wd_aggregate.Distinct_quantiles in
  let sites = 4 in
  let events = max 1_000 (int_of_float (40_000.0 *. o.scale)) in
  let universe = 8_192 in
  let stream =
    Wd_workload.Stream_gen.zipf ~seed:o.seed ~skew:0.8 ~sites ~events
      ~universe ()
  in
  let exact =
    Dq.exact_quantile (Stream.multiplicities stream) 0.5
    |> Option.value ~default:0
  in
  let fam =
    Dq.family ~rng:(Rng.create o.seed)
      { Dq.universe; rows = 3; cols = 128; bitmaps = 10 }
  in
  let dyadic_rows =
    List.map
      (fun algorithm ->
        let t =
          Dq.Tracked.create ~item_batching:true ~algorithm
            ~theta:(0.3 *. o.epsilon) ~sites ~family:fam ()
        in
        Stream.iter (fun ~site ~item -> Dq.Tracked.observe t ~site item) stream;
        let median = Dq.Tracked.median t in
        [
          S ("dyadic-fm/" ^ Dc.algorithm_to_string algorithm);
          I (Network.total_bytes (Dq.Tracked.network t));
          I median;
          I exact;
          F
            (Float.abs (Float.of_int (median - exact))
            /. Float.of_int (max 1 exact));
        ])
      [ Dc.NS; Dc.SC; Dc.LS ]
  in
  (* The sampling route to the same query: track a distinct sample and
     take order statistics of the sampled item values. *)
  let sample_rows =
    List.map
      (fun algorithm ->
        let r =
          Simulation.run ~seed:o.seed
            (Query.ds ~theta:0.25 ~threshold:1_000 algorithm)
            stream
        in
        let median =
          Option.value
            (Duplication.value_median (snd (ds_level_sample r)))
            ~default:0
        in
        [
          S ("sample/" ^ Ds.algorithm_to_string algorithm);
          I r.Simulation.total_bytes;
          I median;
          I exact;
          F
            (Float.abs (Float.of_int (median - exact))
            /. Float.of_int (max 1 exact));
        ])
      [ Ds.LCO ]
  in
  {
    id = "ablation_quantiles";
    title =
      "Duplicate-resilient quantiles (footnote 3): dyadic-FM tracking vs distinct-sample order statistics";
    params =
      common_params o
        (Printf.sprintf "zipf(0.8) stream, %d sites, universe %d" sites universe)
      @ [ ("events", string_of_int events) ];
    header = [ "method"; "bytes"; "median est"; "median true"; "rel err" ];
    rows = dyadic_rows @ sample_rows;
  }

let ablation_resilience ?(options = default_options) () =
  let o = options in
  (* The paper's motivating contrast: find "the objects requested by the
     largest number of distinct clients, without being influenced by
     clients requesting the same object multiple times".  Workload: 20
     organically popular objects (requested once each by many distinct
     clients, more clients for lower object ids) plus 5 "botted" objects
     hammered by a handful of clients; frequency-based heavy hitters
     (Space-Saving over objectIDs) crown the bots, the distinct
     heavy-hitter structure does not. *)
  let rng = Rng.create o.seed in
  let scale_n n = max 10 (int_of_float (Float.of_int n *. o.scale)) in
  let pairs = ref [] in
  for obj = 0 to 19 do
    let clients = scale_n (4_000 - (150 * obj)) in
    for w = 0 to clients - 1 do
      pairs := (obj, (obj * 1_000_000) + w) :: !pairs
    done
  done;
  for bot = 0 to 4 do
    let obj = 100 + bot in
    for w = 0 to 2 do
      for _ = 1 to scale_n 20_000 do
        pairs := (obj, w) :: !pairs
      done
    done
  done;
  let arr = Array.of_list !pairs in
  Rng.shuffle_in_place rng arr;
  let exact_top_by_distinct =
    (* Objects 0..9 have the most distinct clients by construction. *)
    List.init 10 Fun.id
  in
  let ss = Wd_frequency.Space_saving.create ~capacity:256 in
  let hh =
    Wd_aggregate.Distinct_hh.Centralized.create
      ~family:
        (Wd_aggregate.Fm_array.family ~rng
           { Wd_aggregate.Fm_array.rows = 3; cols = 256; bitmaps = 12 })
  in
  Array.iter
    (fun (v, w) ->
      Wd_frequency.Space_saving.add ss v;
      Wd_aggregate.Distinct_hh.Centralized.add hh ~v ~w)
    arr;
  let recall name ranked =
    let top10 = List.filteri (fun i _ -> i < 10) (List.map fst ranked) in
    let hits =
      List.length (List.filter (fun v -> List.mem v top10) exact_top_by_distinct)
    in
    let bots = List.length (List.filter (fun v -> v >= 100) top10) in
    [ S name; F (Float.of_int hits /. 10.0); I bots ]
  in
  {
    id = "ablation_resilience";
    title =
      "Motivation: frequency heavy hitters vs distinct heavy hitters under duplication";
    params =
      common_params o "20 popular objects + 5 botted objects"
      @ [ ("events", string_of_int (Array.length arr)) ];
    header = [ "method"; "recall@10 (distinct truth)"; "bots in top-10" ];
    rows =
      [
        recall "space-saving (frequency)"
          (List.map
             (fun (v, c) -> (v, Float.of_int c))
             (Wd_frequency.Space_saving.top ss ~k:10));
        recall "distinct heavy hitters"
          (Wd_aggregate.Distinct_hh.Centralized.top hh ~k:10);
      ];
  }

let ext_windows ?(options = default_options) () =
  let o = options in
  let module W = Wd_protocol.Window_tracker in
  let module Wfm = Wd_sketch.Fm_window in
  let sites = 4 in
  let events = max 2_000 (int_of_float (120_000.0 *. o.scale)) in
  let window = events / 6 in
  (* A drifting universe: each phase introduces a fresh item range, so
     the windowed distinct count genuinely rises and falls. *)
  let rng = Rng.create o.seed in
  let phase_len = events / 12 in
  let per_phase = 2_000 in
  let sites_a = Array.make events 0 and items_a = Array.make events 0 in
  for j = 0 to events - 1 do
    sites_a.(j) <- Rng.int rng sites;
    items_a.(j) <- ((j / phase_len) * per_phase) + Rng.int rng per_phase
  done;
  let theta = 0.3 *. o.epsilon and alpha = 0.7 *. o.epsilon in
  let family = Wfm.family ~rng ~accuracy:alpha ~confidence:o.confidence in
  let samples = List.init 12 (fun i -> ((i + 1) * events / 12) - 1) in
  let rows =
    List.map
      (fun algorithm ->
        let tr = W.create ~algorithm ~theta ~window ~sites ~family () in
        let truth_tracker = Wd_workload.Window_truth.create () in
        let errs = ref [] in
        let next = ref samples in
        for j = 0 to events - 1 do
          W.observe tr ~site:sites_a.(j) ~time:j items_a.(j);
          Wd_workload.Window_truth.add truth_tracker items_a.(j);
          (match !next with
          | s :: rest when s = j ->
            next := rest;
            let truth =
              Wd_workload.Window_truth.distinct_last truth_tracker window
            in
            if truth > 0 then
              errs :=
                (Float.abs (W.estimate tr ~now:j -. Float.of_int truth)
                /. Float.of_int truth)
                :: !errs
          | _ -> ())
        done;
        let mean_err =
          List.fold_left ( +. ) 0.0 !errs
          /. Float.of_int (max 1 (List.length !errs))
        in
        [
          S (W.algorithm_to_string algorithm);
          I (Network.total_bytes (W.network tr));
          R
            (Float.of_int (Network.total_bytes (W.network tr))
            /. Float.of_int (W.exact_bytes ~updates:events));
          F mean_err;
        ])
      W.all_algorithms
  in
  {
    id = "ext_windows";
    title = "Sliding-window distinct tracking (Section 8 extension)";
    params =
      common_params o "drifting-universe synthetic, 4 sites"
      @ [
          ("events", string_of_int events);
          ("window", string_of_int window);
        ];
    header = [ "algorithm"; "bytes"; "ratio vs forward-all"; "mean rel err" ];
    rows;
  }

let ext_predictive ?(options = default_options) () =
  let o = options in
  let module P = Wd_protocol.Predictive in
  let sites = 4 in
  let events = max 2_000 (int_of_float (200_000.0 *. o.scale)) in
  (* Steady growth with duplication: each event is a fresh item with
     probability 0.4, otherwise a repeat of an earlier item — the regime
     prediction models are built for. *)
  let rng = Rng.create o.seed in
  let sites_a = Array.make events 0 and items_a = Array.make events 0 in
  let fresh = ref 0 in
  for j = 0 to events - 1 do
    sites_a.(j) <- Rng.int rng sites;
    if !fresh = 0 || Rng.float rng 1.0 < 0.4 then begin
      items_a.(j) <- !fresh;
      incr fresh
    end
    else items_a.(j) <- Rng.int rng !fresh
  done;
  let stream = Stream.make ~sites:sites_a ~items:items_a in
  let theta = 0.3 *. o.epsilon and alpha = 0.7 *. o.epsilon in
  let family =
    Wd_sketch.Fm.family ~rng:(Rng.create (o.seed + 1)) ~accuracy:alpha
      ~confidence:o.confidence
  in
  let truth = Stream.distinct_count stream in
  let exact = Simulation.exact_dc_bytes stream in
  let predictive_row model =
    let tr = P.create ~model ~theta ~sites ~family () in
    Stream.iter (fun ~site ~item -> P.observe tr ~site item) stream;
    let err =
      Float.abs (P.estimate tr -. Float.of_int truth) /. Float.of_int truth
    in
    [
      S ("predictive/" ^ P.model_to_string model);
      I (Network.total_bytes (P.network tr));
      R (Float.of_int (Network.total_bytes (P.network tr)) /. Float.of_int exact);
      F err;
      I (P.sends tr);
    ]
  in
  let dc_row algorithm =
    let r =
      Simulation.run ~seed:o.seed ~error_samples:1
        (Query.dc ~theta ~alpha algorithm)
        stream
    in
    let err =
      Float.abs (r.Simulation.final_estimate -. Float.of_int truth)
      /. Float.of_int truth
    in
    [
      S (Dc.algorithm_to_string algorithm);
      I r.Simulation.total_bytes;
      R (Float.of_int r.Simulation.total_bytes /. Float.of_int exact);
      F err;
      I r.Simulation.sends;
    ]
  in
  {
    id = "ext_predictive";
    title = "Prediction-model tracking (Section 8 extension, style of [8,9])";
    params =
      common_params o "steady-growth synthetic (40% fresh), 4 sites"
      @ [ ("events", string_of_int events);
          ("distinct", string_of_int truth) ];
    header = [ "tracker"; "bytes"; "ratio vs exact"; "final err"; "syncs" ];
    rows =
      [ predictive_row P.Static; predictive_row P.Linear_growth;
        dc_row Dc.NS; dc_row Dc.LS ];
  }

let ext_topology ?(options = default_options) () =
  let o = options in
  (* Hierarchical deployment: the same stream routed through deeper and
     deeper aggregation trees.  The site links pay exactly the flat-star
     traffic regardless of the tree (the protocol is unchanged); what the
     table exposes is the backbone surcharge per added layer — the cost
     of making the CDN hierarchy explicit in the ledger. *)
  let sites = 16 in
  let events = max 2_000 (Float.to_int (100_000.0 *. o.scale)) in
  let stream =
    Wd_workload.Stream_gen.zipf ~seed:o.seed ~sites ~events
      ~universe:(events / 4) ()
  in
  let theta = 0.3 *. o.epsilon and alpha = 0.7 *. o.epsilon in
  let specs =
    [ "flat"; "tree:regions=4"; "tree:regions=8,fanout=2" ]
  in
  let rows =
    List.map
      (fun spec ->
        let topo =
          match Wd_net.Topology.of_spec ~sites spec with
          | Ok t -> t
          | Error e -> invalid_arg e
        in
        let r =
          Simulation.run ~seed:o.seed ~error_samples:1 ~topology:topo
            (Query.dc ~theta ~alpha Dc.LS)
            stream
        in
        let err =
          Float.abs
            (r.Simulation.final_estimate
            -. Float.of_int r.Simulation.final_truth)
          /. Float.of_int r.Simulation.final_truth
        in
        [
          S spec;
          I (Wd_net.Topology.depth topo);
          I r.Simulation.total_bytes;
          I r.Simulation.backbone_bytes;
          I (r.Simulation.total_bytes + r.Simulation.backbone_bytes);
          F err;
        ])
      specs
  in
  {
    id = "ext_topology";
    title =
      "Extension: tree topologies — site links are depth-invariant, the \
       backbone pays per hop";
    params = common_params o "Zipf items, 16 sites, LS";
    header =
      [ "topology"; "depth"; "site bytes"; "backbone"; "grand total"; "err" ];
    rows;
  }

(* ------------------------------------------------------------------ *)
(* Suites *)

let registry : (string * (options -> table)) list =
  [
    ("fig5a", fun o -> fig5a ~options:o ());
    ("fig5b", fun o -> fig5b ~options:o ());
    ("fig5c", fun o -> fig5c ~options:o ());
    ("fig5d", fun o -> fig5d ~options:o ());
    ("fig5e", fun o -> fig5e ~options:o ());
    ("fig5f", fun o -> fig5f ~options:o ());
    ("fig6a", fun o -> fig6a ~options:o ());
    ("fig6b", fun o -> fig6b ~options:o ());
    ("fig6c", fun o -> fig6c ~options:o ());
    ("fig7a", fun o -> fig7a ~options:o ());
    ("fig7b", fun o -> fig7b ~options:o ());
    ("fig7c", fun o -> fig7c ~options:o ());
    ("ablation_radio", fun o -> ablation_radio ~options:o ());
    ("ablation_radio_ds", fun o -> ablation_radio_ds ~options:o ());
    ("ablation_sketch_type", fun o -> ablation_sketch_type ~options:o ());
    ("ablation_fm_variant", fun o -> ablation_fm_variant ~options:o ());
    ("ablation_batching", fun o -> ablation_batching ~options:o ());
    ("ablation_quantiles", fun o -> ablation_quantiles ~options:o ());
    ("ablation_resilience", fun o -> ablation_resilience ~options:o ());
    ("ext_windows", fun o -> ext_windows ~options:o ());
    ("ext_predictive", fun o -> ext_predictive ~options:o ());
    ("ext_scaling", fun o -> ext_scaling ~options:o ());
    ("ext_topology", fun o -> ext_topology ~options:o ());
  ]

let ids = List.map fst registry

let by_id id = List.assoc_opt id registry

let all ?(options = default_options) () =
  List.map (fun (_, f) -> f options) registry
