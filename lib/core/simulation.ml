module Stream = Wd_workload.Stream
module Network = Wd_net.Network
module Transport = Wd_net.Transport
module Tracker_intf = Wd_protocol.Tracker_intf
module Wire = Wd_net.Wire
module Dc = Wd_protocol.Dc_tracker
module Ds = Wd_protocol.Ds_tracker
module Rng = Wd_hashing.Rng
module Sink = Wd_obs.Sink
module Event = Wd_obs.Event
module Metrics = Wd_obs.Metrics
module Span = Wd_obs.Span

(* Attach a span recorder to the run's ledger: every message/broadcast
   tap and tracker batch becomes a wall-clock span in the trace (and the
   socket transport starts shipping span contexts in its frames).  The
   trace id is derived from the seed so traces of different runs can be
   aggregated without id collisions; wall stamps come from the shared
   epoch clock so they are comparable across processes on one host. *)
let attach_spans ~spans ?metrics ~seed ~sink net =
  if spans then
    Network.set_spans net
      (Some
         (Span.create
            ~trace_id:(Int64.of_int seed)
            ?metrics ~clock:Wd_net.Clock.ns ~emit:(Sink.emit sink) ()))

(* Identify an instrumented run in its trace. *)
let emit_run_meta sink ~protocol ~algorithm ~sites ~cost_model ~seed =
  if Sink.enabled sink then
    Sink.emit sink
      {
        Event.time = 0;
        kind =
          Event.Run_meta
            {
              run_id = Printf.sprintf "%s-%s-seed%d" protocol algorithm seed;
              protocol;
              algorithm;
              sites;
              cost_model = Network.cost_model_to_string cost_model;
            };
      }

type dc_run = {
  dc_algorithm : Dc.algorithm;
  dc_updates : int;
  dc_total_bytes : int;
  dc_bytes_up : int;
  dc_bytes_down : int;
  dc_sends : int;
  dc_final_estimate : float;
  dc_final_truth : int;
  dc_bytes_series : (int * int) array;
  dc_error_series : (int * float) array;
  dc_drops : int;
  dc_duplicates : int;
  dc_retries : int;
  dc_lost_updates : int;
}

(* Evenly spaced 1-based sample positions over a run of [n] updates,
   always ending at [n]. *)
let sample_positions n samples =
  let samples = max 1 (min samples n) in
  Array.init samples (fun i -> max 1 ((i + 1) * n / samples))

(* Membership test on sorted positions via cursor: returns a function to
   call once per update index (1-based, increasing).  Calling it only at a
   superset of its own positions (as the chunked drivers do, with the
   union of all sample positions) is equally correct: the cursor advances
   exactly at its own positions and ignores the rest. *)
let cursor_matcher positions =
  let next = ref 0 in
  fun j ->
    if !next < Array.length positions && positions.(!next) = j then begin
      incr next;
      (* Skip duplicates (possible when samples > n). *)
      while !next < Array.length positions && positions.(!next) = j do
        incr next
      done;
      true
    end
    else false

(* Sorted deduplicated union of two increasing position arrays — the
   chunk boundaries of the batched drivers: a tracker can safely consume
   a whole slice between consecutive sample positions in one
   [observe_batch] call, because nothing is observed between them. *)
let merge_positions a b =
  let la = Array.length a and lb = Array.length b in
  let out = Array.make (la + lb) 0 in
  let i = ref 0 and j = ref 0 and m = ref 0 in
  let push x =
    if !m = 0 || out.(!m - 1) <> x then begin
      out.(!m) <- x;
      incr m
    end
  in
  while !i < la || !j < lb do
    if !j >= lb || (!i < la && a.(!i) <= b.(!j)) then begin
      push a.(!i);
      incr i
    end
    else begin
      push b.(!j);
      incr j
    end
  done;
  Array.sub out 0 !m

(* Drive any packed tracker over a stream.  With crash windows in the
   fault plan, truth depends on per-update loss accounting — arrivals
   discarded inside a window never reached the system — so the tracker
   is fed one update at a time and [on_arrival] fires only for arrivals
   that got through.  Without crashes no arrival can be lost, so the
   tracker consumes whole slices between [boundaries] in one
   [observe_batch] call — observationally identical, with the
   closure-per-update dispatch gone.  [sample_at] fires once per
   boundary either way (boundaries must be increasing and end at the
   stream length). *)
let feed tracker ~faults ~boundaries ~on_arrival ~sample_at stream =
  if Wd_net.Faults.has_crashes faults then
    Stream.iteri
      (fun j0 ~site ~item ->
        let lost0 = Tracker_intf.lost_updates tracker in
        Tracker_intf.observe tracker ~site item;
        if Tracker_intf.lost_updates tracker = lost0 then on_arrival item;
        sample_at (j0 + 1))
      stream
  else begin
    let sites = stream.Stream.sites and items = stream.Stream.items in
    let prev = ref 0 in
    Array.iter
      (fun b ->
        if b > !prev then begin
          Tracker_intf.observe_batch tracker ~sites ~items ~pos:!prev
            ~len:(b - !prev);
          for j = !prev to b - 1 do
            on_arrival (Array.unsafe_get items j)
          done;
          prev := b
        end;
        sample_at b)
      boundaries
  end

module Make_dc (Sketch : Wd_sketch.Sketch_intf.DISTINCT_SKETCH) = struct
  module Tracker = Dc.Make (Sketch)

  let run ?(cost_model = Network.Unicast) ?transport ?(item_batching = true)
      ?(seed = 1) ?(checkpoints = 20) ?(error_samples = 200)
      ?(confidence = 0.9) ?family ?(sink = Sink.null) ?metrics
      ?(spans = false) ?(faults = Wd_net.Faults.none) ?(shards = 1) ~algorithm
      ~theta ~alpha stream =
    let n = Stream.length stream in
    if n = 0 then invalid_arg "Simulation.run_dc: empty stream";
    let k = Stream.num_sites stream in
    let rng = Rng.create seed in
    let family =
      match family with
      | Some f -> f
      | None -> Sketch.family ~rng ~accuracy:alpha ~confidence
    in
    (* EC ignores theta but the constructor validates it. *)
    let theta = if algorithm = Dc.EC then Float.max theta 0.1 else theta in
    let tracker =
      Tracker.create ~cost_model ?transport ~item_batching ~sink ~shards
        ~algorithm ~theta ~sites:k ~family ()
    in
    let transport = Tracker.transport tracker in
    let net = Tracker.network tracker in
    Network.set_sink net sink;
    attach_spans ~spans ?metrics ~seed ~sink net;
    Transport.set_faults transport faults;
    emit_run_meta sink ~protocol:"dc"
      ~algorithm:(Dc.algorithm_to_string algorithm)
      ~sites:k ~cost_model ~seed;
    (* Harness-side accuracy instruments: the protocols never see ground
       truth, so the error histogram lives here, not in the trackers. *)
    let err_hist =
      Option.map
        (fun m ->
          Metrics.histogram m
            ~help:"relative error of the coordinator estimate, sampled"
            ~min_exp:(-20) ~max_exp:4 "wd_estimate_rel_error")
        metrics
    in
    let truth_gauge =
      Option.map
        (fun m ->
          Metrics.gauge m ~help:"exact distinct count at last error sample"
            "wd_true_distinct")
        metrics
    in
    let truth = Hashtbl.create 4096 in
    let byte_positions = sample_positions n checkpoints in
    let err_positions = sample_positions n error_samples in
    let byte_at = cursor_matcher byte_positions in
    let err_at = cursor_matcher err_positions in
    let bytes_series = ref [] and error_series = ref [] in
    let sample_at j =
      if byte_at j then
        bytes_series := (j, Network.total_bytes net) :: !bytes_series;
      if err_at j then begin
        let n0 = Float.of_int (Hashtbl.length truth) in
        let err = Float.abs (Tracker.estimate tracker -. n0) /. n0 in
        Option.iter (fun h -> Metrics.observe h err) err_hist;
        Option.iter (fun g -> Metrics.set g n0) truth_gauge;
        error_series := (j, err) :: !error_series
      end
    in
    (* Truth is a set: arrivals that reached the system, deduplicated.
       [feed] routes the crash-gated one-at-a-time path and the batched
       path through the shared TRACKER surface. *)
    feed (Tracker.generic tracker) ~faults
      ~boundaries:(merge_positions byte_positions err_positions)
      ~on_arrival:(fun item ->
        if not (Hashtbl.mem truth item) then Hashtbl.replace truth item ())
      ~sample_at stream;
    (* Publish deferred sharded merges and join worker domains before
       the final estimate is read. *)
    Tracker.close tracker;
    Transport.close transport;
    {
      dc_algorithm = algorithm;
      dc_updates = n;
      dc_total_bytes = Network.total_bytes net;
      dc_bytes_up = Network.bytes_up net;
      dc_bytes_down = Network.bytes_down net;
      dc_sends = Tracker.sends tracker;
      dc_final_estimate = Tracker.estimate tracker;
      dc_final_truth = Hashtbl.length truth;
      dc_bytes_series = Array.of_list (List.rev !bytes_series);
      dc_error_series = Array.of_list (List.rev !error_series);
      dc_drops = Network.drops net;
      dc_duplicates = Network.duplicate_deliveries net;
      dc_retries = Network.retries net;
      dc_lost_updates = Tracker.lost_updates tracker;
    }
end

module Dc_fm = Make_dc (Wd_sketch.Fm)

type ds_run = {
  ds_algorithm : Ds.algorithm;
  ds_updates : int;
  ds_total_bytes : int;
  ds_bytes_up : int;
  ds_bytes_down : int;
  ds_sends : int;
  ds_final_level : int;
  ds_final_sample : (int * int) list;
  ds_distinct_estimate : float;
  ds_bytes_series : (int * int) array;
  ds_max_count_error : float;
  ds_drops : int;
  ds_duplicates : int;
  ds_retries : int;
  ds_lost_updates : int;
}

type pair_stream = { psites : int array; vs : int array; ws : int array }

let pair_stream_length p = Array.length p.psites

let pair_stream_sites p =
  Array.fold_left (fun acc s -> max acc (s + 1)) 0 p.psites

let pair_stream_of_requests cfg site_view reqs =
  let module H = Wd_workload.Http_trace in
  let n = Array.length reqs in
  let psites = Array.make n 0 and vs = Array.make n 0 and ws = Array.make n 0 in
  let stream = H.view cfg H.Client_id site_view reqs in
  for j = 0 to n - 1 do
    psites.(j) <- Stream.site stream j;
    vs.(j) <- reqs.(j).H.obj;
    ws.(j) <- reqs.(j).H.client
  done;
  { psites; vs; ws }

type hh_run = {
  hh_algorithm : Dc.algorithm;
  hh_updates : int;
  hh_total_bytes : int;
  hh_bytes_up : int;
  hh_bytes_down : int;
  hh_sends : int;
  hh_avg_norm_error : float;
  hh_topk_recall : float;
  hh_exact_bytes : int;
}

let true_distinct_prefixes stream ~samples =
  let n = Stream.length stream in
  let at = cursor_matcher (sample_positions n samples) in
  let seen = Hashtbl.create 4096 in
  let out = ref [] in
  Stream.iteri
    (fun j0 ~site:_ ~item ->
      if not (Hashtbl.mem seen item) then Hashtbl.replace seen item ();
      if at (j0 + 1) then out := (j0 + 1, Hashtbl.length seen) :: !out)
    stream;
  Array.of_list (List.rev !out)

let exact_dc_bytes stream =
  let k = Stream.num_sites stream in
  let seen = Array.init (max 1 k) (fun _ -> Hashtbl.create 1024) in
  let bytes = ref 0 in
  Stream.iter
    (fun ~site ~item ->
      if not (Hashtbl.mem seen.(site) item) then begin
        Hashtbl.replace seen.(site) item ();
        bytes := !bytes + Wire.message ~payload:Wire.item_bytes
      end)
    stream;
  !bytes

let exact_ds_bytes stream =
  Stream.length stream * Wire.message ~payload:Wire.item_bytes

(* ------------------------------------------------------------------ *)
(* The unified run API: one driver over declarative standing queries. *)

module Query = Wd_view.Query
module Registry = Wd_view.Registry
module Window_truth = Wd_workload.Window_truth
module Yzh = Wd_protocol.Yz_hh_tracker
module Yzq = Wd_aggregate.Yz_quantile_tracker

type view_report = {
  view_label : string;
  view_spec : string;
  view_estimate : float;
  view_routed : int;
  view_sends : int;
  view_bytes_up : int;
  view_bytes_down : int;
  view_total_bytes : int;
}

type aux =
  | Dc_aux
  | Ds_aux of {
      level : int;
      sample : (int * int) list;
      max_count_error : float;
    }
  | Hh_aux of {
      avg_norm_error : float;
      topk_recall : float;
      exact_bytes : int;
    }
  | Window_aux of { window : int; exact_bytes : int }
  | Yz_hh_aux of {
      total_rel_error : float;
      max_rel_error : float;
      topk_recall : float;
    }
  | Yz_q_aux of { rank_error : float; universe : int }

type run = {
  query : Query.t;
  updates : int;
  total_bytes : int;
  bytes_up : int;
  bytes_down : int;
  backbone_bytes : int;
  sends : int;
  final_estimate : float;
  final_truth : int;
  bytes_series : (int * int) array;
  error_series : (int * float) array;
  drops : int;
  duplicates : int;
  retries : int;
  lost_updates : int;
  aux : aux;
  view_reports : view_report array;
}

let stream_of_pairs p =
  let n = pair_stream_length p in
  let items =
    Array.init n (fun j -> Query.pack_pair ~v:p.vs.(j) ~w:p.ws.(j))
  in
  Stream.make ~sites:(Array.copy p.psites) ~items

(* EC baseline over a packed pair stream: one message per locally-new
   pair, both halves on the wire (as [exact_pair_bytes]). *)
let exact_packed_pair_bytes stream =
  let k = Stream.num_sites stream in
  let seen = Array.init (max 1 k) (fun _ -> Hashtbl.create 1024) in
  let bytes = ref 0 in
  Stream.iter
    (fun ~site ~item ->
      if not (Hashtbl.mem seen.(site) item) then begin
        Hashtbl.replace seen.(site) item ();
        bytes := !bytes + Wire.message ~payload:(2 * Wire.item_bytes)
      end)
    stream;
  !bytes

let run ?(cost_model = Network.Unicast) ?transport ?topology
    ?(item_batching = true) ?(seed = 1) ?(checkpoints = 20)
    ?(error_samples = 200) ?(sink = Sink.null) ?metrics ?(spans = false)
    ?(faults = Wd_net.Faults.none) ?(shards = 1) ?(top_k = 20) ?(views = [])
    (query : Query.t) stream =
  let n = Stream.length stream in
  if n = 0 then invalid_arg "Simulation.run: empty stream";
  let k = Stream.num_sites stream in
  let is_window, is_hh, is_ds, sample_error =
    match query.Query.protocol with
    | Query.Dc _ -> (false, false, false, true)
    | Query.Ds _ -> (false, false, true, false)
    | Query.Hh _ -> (false, true, false, false)
    | Query.Window _ -> (true, false, false, true)
    | Query.Yz_hh | Query.Yz_q -> (false, false, false, true)
  in
  let is_yzhh = query.Query.protocol = Query.Yz_hh in
  let is_yzq = query.Query.protocol = Query.Yz_q in
  if is_window && Wd_net.Faults.enabled faults then
    invalid_arg
      "Simulation.run: fault injection is not supported for window queries";
  let default_window = max 1 (n / 4) in
  let resolved_window =
    if query.Query.window > 0 then query.Query.window else default_window
  in
  let reg =
    Registry.create ~cost_model ?transport ~item_batching ~sink ~shards
      ~default_window ~seed ~sites:k (query :: views)
  in
  let tracker = Registry.packed reg in
  let net = Tracker_intf.network tracker in
  Network.set_sink net sink;
  (* Install the tree before any traffic: the primary's trackers read it
     through the shared ledger on every delivered contribution, so sim,
     socket and TCP backends all route identically. *)
  Option.iter (fun topo -> Network.set_topology net topo) topology;
  attach_spans ~spans ?metrics ~seed ~sink net;
  if not is_window then
    Transport.set_faults (Tracker_intf.transport tracker) faults;
  emit_run_meta sink
    ~protocol:(Query.protocol_family query.Query.protocol)
    ~algorithm:(Query.protocol_algorithm query.Query.protocol)
    ~sites:k ~cost_model ~seed;
  (* Harness-side accuracy instruments, for the protocols whose scalar
     estimate is continuously comparable to exact ground truth. *)
  let err_hist =
    if sample_error then
      Option.map
        (fun m ->
          Metrics.histogram m
            ~help:"relative error of the coordinator estimate, sampled"
            ~min_exp:(-20) ~max_exp:4 "wd_estimate_rel_error")
        metrics
    else None
  in
  let truth_gauge =
    if sample_error then
      Option.map
        (fun m ->
          Metrics.gauge m ~help:"exact distinct count at last error sample"
            "wd_true_distinct")
        metrics
    else None
  in
  (* Ground truth over arrivals that reached the system: multiplicities
     (DS needs counts; the table's size is the distinct truth), a
     windowed structure for window queries, and the surviving arrival
     order for HH degree evaluation. *)
  let truth = Hashtbl.create 4096 in
  let wtruth = if is_window then Some (Window_truth.create ()) else None in
  let hh_log = ref [] in
  let arrivals = ref 0 in
  (* YZ-quantile truth is over the tracker's folded item domain. *)
  let yzq = if is_yzq then Registry.yzq_tracker reg 0 else None in
  let qtruth = Hashtbl.create (if is_yzq then 4096 else 1) in
  let on_arrival item =
    incr arrivals;
    Hashtbl.replace truth item
      (1 + Option.value ~default:0 (Hashtbl.find_opt truth item));
    (match wtruth with Some w -> Window_truth.add w item | None -> ());
    (match yzq with
    | Some qt -> Hashtbl.replace qtruth (Yzq.clamp qt item) ()
    | None -> ());
    if is_hh then hh_log := item :: !hh_log
  in
  let truth_now () =
    match wtruth with
    | Some w -> Window_truth.distinct_last w resolved_window
    | None ->
      if is_yzhh then !arrivals
      else if is_yzq then Hashtbl.length qtruth
      else Hashtbl.length truth
  in
  let byte_positions = sample_positions n checkpoints in
  let err_positions =
    if sample_error then sample_positions n error_samples else [||]
  in
  let byte_at = cursor_matcher byte_positions in
  let err_at = cursor_matcher err_positions in
  let bytes_series = ref [] and error_series = ref [] in
  let sample_at j =
    if byte_at j then
      bytes_series := (j, Network.total_bytes net) :: !bytes_series;
    if sample_error && err_at j then begin
      let n0 = Float.of_int (truth_now ()) in
      let err = Float.abs (Tracker_intf.estimate tracker -. n0) /. n0 in
      Option.iter (fun h -> Metrics.observe h err) err_hist;
      Option.iter (fun g -> Metrics.set g n0) truth_gauge;
      error_series := (j, err) :: !error_series
    end
  in
  feed tracker ~faults
    ~boundaries:(merge_positions byte_positions err_positions)
    ~on_arrival ~sample_at stream;
  (* Publish deferred sharded merges, join worker domains and close the
     transports before the final answers are read. *)
  Registry.close reg;
  let aux =
    if is_ds then begin
      let ds = Option.get (Registry.ds_tracker reg 0) in
      let sample = Ds.sample ds in
      let max_count_error =
        List.fold_left
          (fun acc (v, c) ->
            match Hashtbl.find_opt truth v with
            | None -> acc (* cannot happen: sampled items are in the stream *)
            | Some c_true ->
              Float.max acc
                (Float.abs (Float.of_int (c - c_true))
                /. Float.of_int c_true))
          0.0 sample
      in
      Ds_aux { level = Ds.level ds; sample; max_count_error }
    end
    else if is_hh then begin
      let h = Option.get (Registry.hh_tracker reg 0) in
      let arrivals = Array.of_list (List.rev !hh_log) in
      let pair_seq =
        Seq.init (Array.length arrivals) (fun j ->
            (Query.unpack_v arrivals.(j), Query.unpack_w arrivals.(j)))
      in
      let degrees = Wd_aggregate.Distinct_hh.exact_degrees pair_seq in
      let distinct_pairs = Hashtbl.fold (fun _ d acc -> acc + d) degrees 0 in
      let exact_top =
        Hashtbl.fold (fun v d acc -> (v, d) :: acc) degrees []
        |> List.sort (fun (_, a) (_, b) -> compare b a)
        |> List.filteri (fun i _ -> i < top_k)
      in
      let avg_norm_error =
        match exact_top with
        | [] -> 0.0
        | _ ->
          let total =
            List.fold_left
              (fun acc (v, d) ->
                let est = Wd_aggregate.Distinct_hh.Tracked.estimate h v in
                acc
                +. Float.abs (est -. Float.of_int d)
                   /. Float.of_int (max 1 distinct_pairs))
              0.0 exact_top
          in
          total /. Float.of_int (List.length exact_top)
      in
      let estimated_top =
        Wd_aggregate.Distinct_hh.Tracked.top h ~k:top_k |> List.map fst
      in
      let recall =
        match exact_top with
        | [] -> 1.0
        | _ ->
          let hits =
            List.length
              (List.filter (fun (v, _) -> List.mem v estimated_top) exact_top)
          in
          Float.of_int hits /. Float.of_int (List.length exact_top)
      in
      Hh_aux
        {
          avg_norm_error;
          topk_recall = recall;
          exact_bytes = exact_packed_pair_bytes stream;
        }
    end
    else if is_window then
      Window_aux
        {
          window = resolved_window;
          exact_bytes = Wd_protocol.Window_tracker.exact_bytes ~updates:n;
        }
    else if is_yzhh then begin
      let h = Option.get (Registry.yzhh_tracker reg 0) in
      let n_total = max 1 !arrivals in
      let exact_top =
        Hashtbl.fold (fun v c acc -> (v, c) :: acc) truth []
        |> List.sort (fun (_, a) (_, b) -> compare b a)
        |> List.filteri (fun i _ -> i < top_k)
      in
      (* Yi–Zhang errors are additive in eps * N: report them
         normalized by the true total so the [alpha] budget is directly
         checkable. *)
      let max_rel_error =
        List.fold_left
          (fun acc (v, c) ->
            let est = Option.value (Yzh.query h v) ~default:0 in
            Float.max acc
              (Float.abs (Float.of_int (est - c)) /. Float.of_int n_total))
          0.0 exact_top
      in
      let estimated_top = Yzh.top h ~k:top_k |> List.map fst in
      let topk_recall =
        match exact_top with
        | [] -> 1.0
        | _ ->
          let hits =
            List.length
              (List.filter (fun (v, _) -> List.mem v estimated_top) exact_top)
          in
          Float.of_int hits /. Float.of_int (List.length exact_top)
      in
      Yz_hh_aux
        {
          total_rel_error =
            Float.abs (Float.of_int (Yzh.total_estimate h - !arrivals))
            /. Float.of_int n_total;
          max_rel_error;
          topk_recall;
        }
    end
    else if is_yzq then begin
      let qt = Option.get (Registry.yzq_tracker reg 0) in
      let m = Yzq.quantile qt 0.5 in
      let d = Hashtbl.length qtruth in
      let below =
        Hashtbl.fold (fun v () acc -> if v <= m then acc + 1 else acc) qtruth 0
      in
      let rank_error =
        if d = 0 then 0.0
        else Float.abs ((Float.of_int below /. Float.of_int d) -. 0.5)
      in
      Yz_q_aux { rank_error; universe = Yzq.universe qt }
    end
    else Dc_aux
  in
  let view_reports =
    Array.init (Registry.views reg) (fun i ->
        let vt = Registry.view_tracker reg i in
        let vnet = Tracker_intf.network vt in
        {
          view_label = Registry.label reg i;
          view_spec = Query.to_spec (Registry.query reg i);
          view_estimate = Registry.estimate reg i;
          view_routed = Registry.routed reg i;
          view_sends = Tracker_intf.sends vt;
          view_bytes_up = Network.bytes_up vnet;
          view_bytes_down = Network.bytes_down vnet;
          view_total_bytes = Network.total_bytes vnet;
        })
  in
  (* Trace the per-view answers, but only for genuinely multi-view runs:
     single-view traces must stay bit-identical to the legacy drivers. *)
  if Registry.views reg > 1 then
    Array.iteri
      (fun i (vr : view_report) ->
        Sink.emit sink
          {
            Event.time = n;
            kind =
              Event.View_report
                {
                  index = i;
                  label = vr.view_label;
                  spec = vr.view_spec;
                  estimate = vr.view_estimate;
                  routed = vr.view_routed;
                  bytes = vr.view_total_bytes;
                };
          })
      view_reports;
  {
    query;
    updates = n;
    total_bytes = Network.total_bytes net;
    bytes_up = Network.bytes_up net;
    bytes_down = Network.bytes_down net;
    backbone_bytes = Network.backbone_bytes net;
    sends = Tracker_intf.sends tracker;
    final_estimate = Tracker_intf.estimate tracker;
    final_truth = truth_now ();
    bytes_series = Array.of_list (List.rev !bytes_series);
    error_series = Array.of_list (List.rev !error_series);
    drops = Network.drops net;
    duplicates = Network.duplicate_deliveries net;
    retries = Network.retries net;
    lost_updates = Tracker_intf.lost_updates tracker;
    aux;
    view_reports;
  }

(* ------------------------------------------------------------------ *)
(* Legacy entry points, kept as wrappers over {!run}. *)

let run_dc ?cost_model ?transport ?item_batching ?seed ?checkpoints
    ?error_samples ?confidence ?sink ?metrics ?spans ?faults ?shards ~algorithm
    ~theta ~alpha stream =
  if Stream.length stream = 0 then
    invalid_arg "Simulation.run_dc: empty stream";
  let r =
    run ?cost_model ?transport ?item_batching ?seed ?checkpoints
      ?error_samples ?sink ?metrics ?spans ?faults ?shards
      (Query.dc ?confidence ~theta ~alpha algorithm)
      stream
  in
  {
    dc_algorithm = algorithm;
    dc_updates = r.updates;
    dc_total_bytes = r.total_bytes;
    dc_bytes_up = r.bytes_up;
    dc_bytes_down = r.bytes_down;
    dc_sends = r.sends;
    dc_final_estimate = r.final_estimate;
    dc_final_truth = r.final_truth;
    dc_bytes_series = r.bytes_series;
    dc_error_series = r.error_series;
    dc_drops = r.drops;
    dc_duplicates = r.duplicates;
    dc_retries = r.retries;
    dc_lost_updates = r.lost_updates;
  }

let run_ds ?cost_model ?transport ?seed ?checkpoints ?sink ?spans ?faults
    ~algorithm ~theta ~threshold stream =
  if Stream.length stream = 0 then
    invalid_arg "Simulation.run_ds: empty stream";
  let r =
    run ?cost_model ?transport ?seed ?checkpoints ?sink ?spans ?faults
      (Query.ds ~theta ~threshold algorithm)
      stream
  in
  let level, sample, max_count_error =
    match r.aux with
    | Ds_aux { level; sample; max_count_error } ->
      (level, sample, max_count_error)
    | _ -> assert false
  in
  {
    ds_algorithm = algorithm;
    ds_updates = r.updates;
    ds_total_bytes = r.total_bytes;
    ds_bytes_up = r.bytes_up;
    ds_bytes_down = r.bytes_down;
    ds_sends = r.sends;
    ds_final_level = level;
    ds_final_sample = sample;
    ds_distinct_estimate = r.final_estimate;
    ds_bytes_series = r.bytes_series;
    ds_max_count_error = max_count_error;
    ds_drops = r.drops;
    ds_duplicates = r.duplicates;
    ds_retries = r.retries;
    ds_lost_updates = r.lost_updates;
  }

let run_hh ?cost_model ?transport ?item_batching ?seed ?top_k ~algorithm
    ~theta ~config p =
  if pair_stream_length p = 0 then
    invalid_arg "Simulation.run_hh: empty pair stream";
  let r =
    run ?cost_model ?transport ?item_batching ?seed ?top_k
      (Query.hh ~config ~theta algorithm)
      (stream_of_pairs p)
  in
  let avg_norm_error, topk_recall, exact_bytes =
    match r.aux with
    | Hh_aux { avg_norm_error; topk_recall; exact_bytes } ->
      (avg_norm_error, topk_recall, exact_bytes)
    | _ -> assert false
  in
  {
    hh_algorithm = algorithm;
    hh_updates = r.updates;
    hh_total_bytes = r.total_bytes;
    hh_bytes_up = r.bytes_up;
    hh_bytes_down = r.bytes_down;
    hh_sends = r.sends;
    hh_avg_norm_error = avg_norm_error;
    hh_topk_recall = topk_recall;
    hh_exact_bytes = exact_bytes;
  }
