(** One-stop aliases over the whole library.

    [open Whats_different.Api] (or access qualified) gives short names
    for every public component without having to remember which [wd_*]
    library it lives in:

    {[
      module A = Whats_different.Api

      let rng = A.Rng.create 42
      let fam = A.Fm.family ~rng ~accuracy:0.07 ~confidence:0.9
      let t = A.Dc_tracker.Fm.create ~algorithm:A.Dc_tracker.LS
                ~theta:0.03 ~sites:4 ~family:fam ()
    ]}

    See the per-module documentation for semantics; this module adds
    nothing of its own. *)

(* Substrates *)
module Rng = Wd_hashing.Rng
module Splitmix = Wd_hashing.Splitmix
module Universal = Wd_hashing.Universal
module Tabulation = Wd_hashing.Tabulation
module Geometric = Wd_hashing.Geometric

(* Sketches *)
module Fm_bitmap = Wd_sketch.Fm_bitmap
module Fm = Wd_sketch.Fm
module Fm_window = Wd_sketch.Fm_window
module Bjkst = Wd_sketch.Bjkst
module Hyperloglog = Wd_sketch.Hyperloglog
module Distinct_sampler = Wd_sketch.Distinct_sampler
module Sketch_intf = Wd_sketch.Sketch_intf

(* Network: byte ledger, fault plans, and pluggable transports *)
module Wire = Wd_net.Wire
module Network = Wd_net.Network
module Faults = Wd_net.Faults
module Transport = Wd_net.Transport
module Transport_sim = Wd_net.Transport_sim
module Transport_socket = Wd_net.Transport_socket

(* Protocols (the paper's core) *)
module Params = Wd_protocol.Params
module Tracker_intf = Wd_protocol.Tracker_intf
module Dc_tracker = Wd_protocol.Dc_tracker
module Ds_tracker = Wd_protocol.Ds_tracker
module Window_tracker = Wd_protocol.Window_tracker
module Predictive = Wd_protocol.Predictive

(* Aggregates *)
module Duplication = Wd_aggregate.Duplication
module Fm_array = Wd_aggregate.Fm_array
module Tracked_fm_array = Wd_aggregate.Tracked_fm_array
module Distinct_hh = Wd_aggregate.Distinct_hh
module Distinct_quantiles = Wd_aggregate.Distinct_quantiles

(* Duplicate-sensitive frequency baselines *)
module Cm_sketch = Wd_frequency.Cm_sketch
module Space_saving = Wd_frequency.Space_saving

(* Workloads *)
module Stream = Wd_workload.Stream
module Zipf = Wd_workload.Zipf
module Http_trace = Wd_workload.Http_trace
module Two_phase = Wd_workload.Two_phase
module Stream_gen = Wd_workload.Stream_gen
module Window_truth = Wd_workload.Window_truth
module Trace_io = Wd_workload.Trace_io
