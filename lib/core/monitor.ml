module Rng = Wd_hashing.Rng
module Fm = Wd_sketch.Fm
module Sampler = Wd_sketch.Distinct_sampler
module Network = Wd_net.Network
module Transport = Wd_net.Transport
module Transport_sim = Wd_net.Transport_sim
module Dc = Wd_protocol.Dc_tracker
module Ds = Wd_protocol.Ds_tracker
module Tracker = Wd_protocol.Tracker_intf
module Fm_array = Wd_aggregate.Fm_array
module Hh = Wd_aggregate.Distinct_hh
module Duplication = Wd_aggregate.Duplication

type config = {
  sites : int;
  epsilon : float;
  confidence : float;
  theta_fraction : float;
  sample_threshold : int;
  sample_theta : float;
  dc_algorithm : Dc.algorithm;
  ds_algorithm : Ds.algorithm;
  hh : Fm_array.config option;
  hh_algorithm : Dc.algorithm;
  cost_model : Network.cost_model;
  seed : int;
  faults : Wd_net.Faults.plan;
  staleness_bound : int;
}

let default_config ~sites =
  {
    sites;
    epsilon = 0.1;
    confidence = 0.9;
    theta_fraction = 0.15;
    sample_threshold = 1_000;
    sample_theta = 0.25;
    dc_algorithm = Dc.LS;
    ds_algorithm = Ds.LCO;
    hh = Some { Fm_array.rows = 3; cols = 256; bitmaps = 12 };
    hh_algorithm = Dc.LS;
    cost_model = Network.Unicast;
    seed = 1;
    faults = Wd_net.Faults.none;
    staleness_bound = 5_000;
  }

type status = Healthy | Degraded of int list

type t = {
  cfg : config;
  dc : Dc.Fm.t;
  ds : Ds.t;
  hh : Hh.Tracked.t option;
  trackers : (string * Tracker.packed) list;
      (* The two core trackers under the shared TRACKER surface, each
         with the label its ledger reports under; health, loss and byte
         accounting dispatch over this list instead of per-variant. *)
}

let create ?transport cfg =
  let rng = Rng.create cfg.seed in
  let theta = cfg.theta_fraction *. cfg.epsilon in
  let alpha = cfg.epsilon -. theta in
  let dc_family = Fm.family ~rng ~accuracy:alpha ~confidence:cfg.confidence in
  let ds_family = Sampler.family ~rng ~threshold:cfg.sample_threshold in
  let make_transport label =
    match transport with
    | Some factory -> factory ~label ~sites:cfg.sites
    | None -> Transport_sim.create ~cost_model:cfg.cost_model ~sites:cfg.sites ()
  in
  let hh =
    Option.map
      (fun shape ->
        Hh.Tracked.create
          ~transport:(make_transport "heavy-hitters")
          ~item_batching:true ~algorithm:cfg.hh_algorithm ~theta
          ~sites:cfg.sites
          ~family:(Fm_array.family ~rng shape) ())
      cfg.hh
  in
  if cfg.staleness_bound < 1 then
    invalid_arg "Monitor.create: staleness_bound must be >= 1";
  let dc =
    Dc.Fm.create
      ~transport:(make_transport "distinct-count")
      ~algorithm:cfg.dc_algorithm ~theta ~sites:cfg.sites ~family:dc_family ()
  in
  let ds =
    Ds.create
      ~transport:(make_transport "distinct-sample")
      ~algorithm:cfg.ds_algorithm ~theta:cfg.sample_theta ~sites:cfg.sites
      ~family:ds_family ()
  in
  let trackers =
    [ ("distinct-count", Dc.Fm.generic dc); ("distinct-sample", Ds.generic ds) ]
  in
  (* The distinct-count and distinct-sample trackers carry their own
     recovery machinery; the heavy-hitter structure stays on a reliable
     channel (its functor shares the DC recovery path when it is given a
     faulty network explicitly). *)
  List.iter
    (fun (_, tr) -> Transport.set_faults (Tracker.transport tr) cfg.faults)
    trackers;
  { cfg; dc; ds; hh; trackers }

let config t = t.cfg

let close t =
  List.iter (fun (_, tr) -> Transport.close (Tracker.transport tr)) t.trackers;
  Option.iter (fun hh -> Transport.close (Hh.Tracked.transport hh)) t.hh

let attach_sink t sink =
  List.iter
    (fun (_, tr) ->
      Tracker.set_sink tr sink;
      Network.set_sink (Tracker.network tr) sink)
    t.trackers;
  Option.iter (fun hh -> Hh.Tracked.set_sink hh sink) t.hh

let observe t ~site v =
  Dc.Fm.observe t.dc ~site v;
  Ds.observe t.ds ~site v

let observe_pair t ~site ~v ~w =
  observe t ~site (Fm_array.pair_element ~v ~w);
  Option.iter (fun hh -> Hh.Tracked.observe hh ~site ~v ~w) t.hh

let distinct t = Dc.Fm.estimate t.dc

let sample t = Ds.sample t.ds

let unique t = Duplication.unique_count ~level:(Ds.level t.ds) (sample t)

let median_duplication t = Duplication.median_count (sample t)

let duplication_fraction t pred = Duplication.fraction pred (sample t)

let top_keys t ~k =
  match t.hh with None -> [] | Some hh -> Hh.Tracked.top hh ~k

let key_degree t v =
  match t.hh with None -> 0.0 | Some hh -> Hh.Tracked.estimate hh v

let status t =
  (* A site is degraded when it has been inside a crash window for longer
     than the staleness bound on any core tracker's update clock; its
     contribution to every answer is frozen at its last synchronization. *)
  let stale = Hashtbl.create 8 in
  for i = 0 to t.cfg.sites - 1 do
    if
      List.exists
        (fun (_, tr) -> Tracker.site_down_for tr i > t.cfg.staleness_bound)
        t.trackers
    then Hashtbl.replace stale i ()
  done;
  let sites = List.sort compare (Hashtbl.fold (fun i () acc -> i :: acc) stale []) in
  match sites with [] -> Healthy | l -> Degraded l

let lost_updates t =
  List.fold_left (fun acc (_, tr) -> acc + Tracker.lost_updates tr) 0 t.trackers

let bytes_breakdown t =
  List.map
    (fun (label, tr) -> (label, Network.total_bytes (Tracker.network tr)))
    t.trackers
  @ [
      ( "heavy-hitters",
        match t.hh with
        | None -> 0
        | Some hh -> Network.total_bytes (Hh.Tracked.network hh) );
    ]

let total_bytes t =
  List.fold_left (fun acc (_, b) -> acc + b) 0 (bytes_breakdown t)
