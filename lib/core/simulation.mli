(** Drive multi-site workloads through the tracking protocols, recording
    communication cost and continuous accuracy against exact ground truth.

    This is the measurement harness behind every experiment: the paper's
    methodology is to simulate the remote sites and coordinator, count the
    bytes each protocol exchanges, and compare "bytes to bytes" against
    the exact algorithms (EC for counting, EDS for sampling).  Ground
    truth (exact distinct counts / multiplicities) is maintained offline
    by the harness and never consulted by the protocols. *)

module Stream = Wd_workload.Stream

(** {1 The unified run API}

    One driver for every protocol family, over declarative
    {!Wd_view.Query} standing queries.  [run query stream] compiles the
    query (plus any satellite [views]) into a {!Wd_view.Registry},
    drives the whole stream through it, and reports cost and accuracy
    against ground truth maintained harness-side.  The legacy
    [run_dc]/[run_ds]/[run_hh] entry points below are thin wrappers and
    produce bit-identical results for the queries they can express. *)

type view_report = {
  view_label : string;
  view_spec : string;  (** {!Wd_view.Query.to_spec} of the view's query *)
  view_estimate : float;
  view_routed : int;  (** arrivals the view's selector accepted *)
  view_sends : int;
  view_bytes_up : int;
  view_bytes_down : int;
  view_total_bytes : int;
}

(** Protocol-specific extras of a {!run}. *)
type aux =
  | Dc_aux
  | Ds_aux of {
      level : int;  (** final global sampling level *)
      sample : (int * int) list;  (** final (item, count) sample *)
      max_count_error : float;
          (** max relative error of tracked counts vs exact counts over
              the final sample (Lemma 2 bounds this by [theta]) *)
    }
  | Hh_aux of {
      avg_norm_error : float;
          (** mean over the exact top-[k] of
              [|estimate - d_v| / distinct_pairs] *)
      topk_recall : float;
      exact_bytes : int;  (** EC baseline on the same pair stream *)
    }
  | Window_aux of {
      window : int;  (** resolved window width in updates *)
      exact_bytes : int;  (** forward-every-update baseline *)
    }
  | Yz_hh_aux of {
      total_rel_error : float;
          (** [|~N - N| / N] of the coordinator's total-count estimate
              (Yi–Zhang bounds this by the query's [alpha]) *)
      max_rel_error : float;
          (** max over the exact top-[k] of [|estimate - count| / N] *)
      topk_recall : float;
    }
  | Yz_q_aux of {
      rank_error : float;
          (** |exact rank of the tracked median - 0.5|, as a fraction of
              the distinct count over the folded domain *)
      universe : int;  (** resolved (power-of-two) item domain *)
    }

type run = {
  query : Wd_view.Query.t;
  updates : int;
  total_bytes : int;
  bytes_up : int;
  bytes_down : int;
  backbone_bytes : int;
      (** aggregator-hop bytes under a tree topology (0 for flat runs);
          kept out of [total_bytes] so flat-star accounting is untouched
          — the whole-tree cost is the sum of both *)
  sends : int;
  final_estimate : float;
      (** the primary view's final answer: DC/window distinct estimate,
          DS sampler estimate, HH top degree *)
  final_truth : int;
      (** exact counterpart: distinct arrivals that reached the system
          (DC/DS), distinct pairs (HH), windowed distinct count
          (window) *)
  bytes_series : (int * int) array;
  error_series : (int * float) array;
      (** sampled relative error — DC and window queries only *)
  drops : int;
  duplicates : int;
  retries : int;
  lost_updates : int;
  aux : aux;
  view_reports : view_report array;
      (** one row per view, the primary first *)
}

val run :
  ?cost_model:Wd_net.Network.cost_model ->
  ?transport:Wd_net.Transport.t ->
  ?topology:Wd_net.Topology.t ->
  ?item_batching:bool ->
  ?seed:int ->
  ?checkpoints:int ->
  ?error_samples:int ->
  ?sink:Wd_obs.Sink.t ->
  ?metrics:Wd_obs.Metrics.t ->
  ?spans:bool ->
  ?faults:Wd_net.Faults.plan ->
  ?shards:int ->
  ?top_k:int ->
  ?views:Wd_view.Query.t list ->
  Wd_view.Query.t ->
  Stream.t ->
  run
(** [run query stream] drives [stream] through [query] and any
    satellite [views], all sharing the single feed pass.

    The primary [query] receives [transport], [sink] and [shards], and
    its byte ledger supplies the run's cost fields — exactly as the
    legacy per-protocol entry points did.  Satellites run on private
    in-process simulator transports (per-view costs are in
    [view_reports]).  A view's hash seed defaults to [seed + index], so
    the primary reproduces a standalone run at [seed] bit-for-bit.

    [faults] applies to the primary's transport (window queries reject
    enabled fault plans — they have no transport); satellite trackers
    see the full arrival stream either way.  [top_k] sizes the HH
    evaluation ([default 20]).  HH queries expect a stream of
    {!Wd_view.Query.pack_pair}ed [(v, w)] keys — see
    {!stream_of_pairs}.

    [topology] installs a {!Wd_net.Topology} tree on the primary's
    ledger before any traffic: contributions then hop
    site→aggregator→…→root with per-hop accounting in the run's
    [backbone_bytes] (site-link fields are unchanged, so a flat
    topology reproduces the default bit-for-bit).  The primary must
    cover the whole stream (its tracker's site count must match the
    topology's).  Window queries ignore it (their ledger is internal);
    trackers that dedup en route (DC/HH) forward only
    genuinely-new bytes at each hop. *)

(** {1 Distinct-count runs} *)

type dc_run = {
  dc_algorithm : Wd_protocol.Dc_tracker.algorithm;
  dc_updates : int;
  dc_total_bytes : int;
  dc_bytes_up : int;
  dc_bytes_down : int;
  dc_sends : int;
  dc_final_estimate : float;
  dc_final_truth : int;
  dc_bytes_series : (int * int) array;
      (** (updates processed, cumulative total bytes) checkpoints *)
  dc_error_series : (int * float) array;
      (** (updates processed, relative error of the coordinator estimate)
          sampled continuously over the run *)
  dc_drops : int;  (** transmissions lost to injected faults *)
  dc_duplicates : int;  (** extra message copies delivered *)
  dc_retries : int;  (** reliable-send retransmissions *)
  dc_lost_updates : int;
      (** stream arrivals discarded because their site was crashed; these
          are excluded from [dc_final_truth] too *)
}

val run_dc :
  ?cost_model:Wd_net.Network.cost_model ->
  ?transport:Wd_net.Transport.t ->
  ?item_batching:bool ->
  ?seed:int ->
  ?checkpoints:int ->
  ?error_samples:int ->
  ?confidence:float ->
  ?sink:Wd_obs.Sink.t ->
  ?metrics:Wd_obs.Metrics.t ->
  ?spans:bool ->
  ?faults:Wd_net.Faults.plan ->
  ?shards:int ->
  algorithm:Wd_protocol.Dc_tracker.algorithm ->
  theta:float ->
  alpha:float ->
  Stream.t ->
  dc_run
[@@ocaml.deprecated "Use Simulation.run with a Wd_view.Query.dc query."]
(** [run_dc ~algorithm ~theta ~alpha stream] runs one protocol over the
    whole stream.  [alpha] sizes the FM family; [confidence] defaults to
    0.9 ([delta = 0.1], as in all paper experiments); [checkpoints]
    (default 20) and [error_samples] (default 200) control the series
    resolutions.  The site count is [Stream.num_sites stream].

    [sink] is attached to both the tracker (protocol events) and its byte
    ledger (message events), and receives a [Run_meta] header; the
    default null sink adds no overhead.  [metrics] additionally records
    harness-side accuracy instruments ([wd_estimate_rel_error],
    [wd_true_distinct]) at the error-sample positions — combine with
    {!Wd_obs.Sink.metrics} over the same registry to collect traffic
    metrics in one place.

    [spans] (default [false]) attaches a {!Wd_obs.Span} recorder to the
    run's ledger: every message, broadcast and tracker batch is emitted
    to [sink] as a wall-clock {!Wd_obs.Event.kind.Span} event (trace id
    derived from [seed]), and a socket transport starts shipping span
    contexts in its frames, timing real cross-process round trips.
    Span events carry wall-clock stamps and are therefore never
    bit-stable across runs — leave this off for golden traces.

    [faults] (default {!Wd_net.Faults.none}) attaches a fault-injection
    plan to the tracker's network: per-link drop/duplicate/corruption and
    scheduled site crashes, with the tracker's recovery machinery (acked
    retries, crash resync) engaged.  The run record then carries the
    fault counters.

    [transport] supplies the tracker's communication backend
    ({!Wd_net.Transport}): the default is a fresh in-process simulator
    with [cost_model], and a {!Wd_net.Transport_socket} backend runs the
    same protocol over per-site relay processes.  The run closes the
    transport on completion ({!Wd_net.Transport.close} — a no-op for the
    simulator, the finish/stats exchange for sockets).

    [shards] (default 1) > 1 routes the coordinator's global sketch
    merges through that many OCaml 5 worker domains
    ({!Wd_protocol.Sharded}); the published estimates are equal to the
    single-domain run by the sketch merge laws.  Not applicable to [EC]. *)

(** Generic variant over any {!Wd_sketch.Sketch_intf.DISTINCT_SKETCH} —
    used by the sketch-type ablation. *)
module Make_dc (Sketch : Wd_sketch.Sketch_intf.DISTINCT_SKETCH) : sig
  val run :
    ?cost_model:Wd_net.Network.cost_model ->
    ?transport:Wd_net.Transport.t ->
    ?item_batching:bool ->
    ?seed:int ->
    ?checkpoints:int ->
    ?error_samples:int ->
    ?confidence:float ->
    ?family:Sketch.family ->
    ?sink:Wd_obs.Sink.t ->
    ?metrics:Wd_obs.Metrics.t ->
    ?spans:bool ->
    ?faults:Wd_net.Faults.plan ->
    ?shards:int ->
    algorithm:Wd_protocol.Dc_tracker.algorithm ->
    theta:float ->
    alpha:float ->
    Stream.t ->
    dc_run
  (** Like {!run_dc}; [family] overrides the [(alpha, confidence)]-derived
      sketch family. *)
end

module Dc_fm : module type of Make_dc (Wd_sketch.Fm)
(** The FM instantiation backing {!run_dc}, exposed for runs that need an
    explicit FM family (e.g. the averaged-variant ablation). *)

(** {1 Distinct-sample runs} *)

type ds_run = {
  ds_algorithm : Wd_protocol.Ds_tracker.algorithm;
  ds_updates : int;
  ds_total_bytes : int;
  ds_bytes_up : int;
  ds_bytes_down : int;
  ds_sends : int;
  ds_final_level : int;
  ds_final_sample : (int * int) list;
  ds_distinct_estimate : float;
  ds_bytes_series : (int * int) array;
  ds_max_count_error : float;
      (** max over the final sample of the relative error of the tracked
          count vs the item's exact global count (Lemma 2 bounds this by
          [theta] for the approximate algorithms); with faults, exact
          counts exclude arrivals discarded at crashed sites *)
  ds_drops : int;
  ds_duplicates : int;
  ds_retries : int;
  ds_lost_updates : int;
}

val run_ds :
  ?cost_model:Wd_net.Network.cost_model ->
  ?transport:Wd_net.Transport.t ->
  ?seed:int ->
  ?checkpoints:int ->
  ?sink:Wd_obs.Sink.t ->
  ?spans:bool ->
  ?faults:Wd_net.Faults.plan ->
  algorithm:Wd_protocol.Ds_tracker.algorithm ->
  theta:float ->
  threshold:int ->
  Stream.t ->
  ds_run
[@@ocaml.deprecated "Use Simulation.run with a Wd_view.Query.ds query."]
(** [sink] is attached to the tracker and its byte ledger; [spans],
    [faults] and [transport] behave as in [run_dc] (the transport is
    closed when the run completes). *)

(** {1 Distinct heavy-hitter runs} *)

type pair_stream = { psites : int array; vs : int array; ws : int array }
(** A multi-site stream of [(v, w)] pairs. *)

val pair_stream_length : pair_stream -> int
val pair_stream_sites : pair_stream -> int

val pair_stream_of_requests :
  Wd_workload.Http_trace.config ->
  Wd_workload.Http_trace.site_view ->
  Wd_workload.Http_trace.request array ->
  pair_stream
(** [(v, w) = (objectID, clientID)]: track the objects requested by the
    most distinct clients, as in Figure 7(c). *)

val stream_of_pairs : pair_stream -> Stream.t
(** The pair stream as a single-item stream of
    {!Wd_view.Query.pack_pair}ed keys — the form {!run} consumes for HH
    queries.  Requires [0 <= v, w < 2^31]. *)

type hh_run = {
  hh_algorithm : Wd_protocol.Dc_tracker.algorithm;
  hh_updates : int;
  hh_total_bytes : int;
  hh_bytes_up : int;
  hh_bytes_down : int;
  hh_sends : int;
  hh_avg_norm_error : float;
      (** mean over the exact top-[k] keys of
          [|estimate - d_v| / distinct_pairs] — the paper reports this
          normalized estimation error ("< 0.1%") *)
  hh_topk_recall : float;
      (** fraction of the exact top-[k] keys present in the estimated
          top-[k] *)
  hh_exact_bytes : int;
      (** EC baseline on the same pair stream: one message per locally new
          pair *)
}

val run_hh :
  ?cost_model:Wd_net.Network.cost_model ->
  ?transport:Wd_net.Transport.t ->
  ?item_batching:bool ->
  ?seed:int ->
  ?top_k:int ->
  algorithm:Wd_protocol.Dc_tracker.algorithm ->
  theta:float ->
  config:Wd_aggregate.Fm_array.config ->
  pair_stream ->
  hh_run
[@@ocaml.deprecated
  "Use Simulation.run with a Wd_view.Query.hh query over stream_of_pairs."]

(** {1 Ground truth helpers} *)

val true_distinct_prefixes : Stream.t -> samples:int -> (int * int) array
(** Exact distinct counts at [samples] evenly spaced prefixes. *)

val exact_dc_bytes : Stream.t -> int
(** Total bytes the EC baseline sends on this stream (header + item per
    locally-new item), computed without running a tracker. *)

val exact_ds_bytes : Stream.t -> int
(** Total bytes the EDS baseline sends (header + item per update). *)
