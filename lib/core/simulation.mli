(** Drive multi-site workloads through the tracking protocols, recording
    communication cost and continuous accuracy against exact ground truth.

    This is the measurement harness behind every experiment: the paper's
    methodology is to simulate the remote sites and coordinator, count the
    bytes each protocol exchanges, and compare "bytes to bytes" against
    the exact algorithms (EC for counting, EDS for sampling).  Ground
    truth (exact distinct counts / multiplicities) is maintained offline
    by the harness and never consulted by the protocols. *)

module Stream = Wd_workload.Stream

(** {1 Distinct-count runs} *)

type dc_run = {
  dc_algorithm : Wd_protocol.Dc_tracker.algorithm;
  dc_updates : int;
  dc_total_bytes : int;
  dc_bytes_up : int;
  dc_bytes_down : int;
  dc_sends : int;
  dc_final_estimate : float;
  dc_final_truth : int;
  dc_bytes_series : (int * int) array;
      (** (updates processed, cumulative total bytes) checkpoints *)
  dc_error_series : (int * float) array;
      (** (updates processed, relative error of the coordinator estimate)
          sampled continuously over the run *)
  dc_drops : int;  (** transmissions lost to injected faults *)
  dc_duplicates : int;  (** extra message copies delivered *)
  dc_retries : int;  (** reliable-send retransmissions *)
  dc_lost_updates : int;
      (** stream arrivals discarded because their site was crashed; these
          are excluded from [dc_final_truth] too *)
}

val run_dc :
  ?cost_model:Wd_net.Network.cost_model ->
  ?transport:Wd_net.Transport.t ->
  ?item_batching:bool ->
  ?seed:int ->
  ?checkpoints:int ->
  ?error_samples:int ->
  ?confidence:float ->
  ?sink:Wd_obs.Sink.t ->
  ?metrics:Wd_obs.Metrics.t ->
  ?spans:bool ->
  ?faults:Wd_net.Faults.plan ->
  ?shards:int ->
  algorithm:Wd_protocol.Dc_tracker.algorithm ->
  theta:float ->
  alpha:float ->
  Stream.t ->
  dc_run
(** [run_dc ~algorithm ~theta ~alpha stream] runs one protocol over the
    whole stream.  [alpha] sizes the FM family; [confidence] defaults to
    0.9 ([delta = 0.1], as in all paper experiments); [checkpoints]
    (default 20) and [error_samples] (default 200) control the series
    resolutions.  The site count is [Stream.num_sites stream].

    [sink] is attached to both the tracker (protocol events) and its byte
    ledger (message events), and receives a [Run_meta] header; the
    default null sink adds no overhead.  [metrics] additionally records
    harness-side accuracy instruments ([wd_estimate_rel_error],
    [wd_true_distinct]) at the error-sample positions — combine with
    {!Wd_obs.Sink.metrics} over the same registry to collect traffic
    metrics in one place.

    [spans] (default [false]) attaches a {!Wd_obs.Span} recorder to the
    run's ledger: every message, broadcast and tracker batch is emitted
    to [sink] as a wall-clock {!Wd_obs.Event.kind.Span} event (trace id
    derived from [seed]), and a socket transport starts shipping span
    contexts in its frames, timing real cross-process round trips.
    Span events carry wall-clock stamps and are therefore never
    bit-stable across runs — leave this off for golden traces.

    [faults] (default {!Wd_net.Faults.none}) attaches a fault-injection
    plan to the tracker's network: per-link drop/duplicate/corruption and
    scheduled site crashes, with the tracker's recovery machinery (acked
    retries, crash resync) engaged.  The run record then carries the
    fault counters.

    [transport] supplies the tracker's communication backend
    ({!Wd_net.Transport}): the default is a fresh in-process simulator
    with [cost_model], and a {!Wd_net.Transport_socket} backend runs the
    same protocol over per-site relay processes.  The run closes the
    transport on completion ({!Wd_net.Transport.close} — a no-op for the
    simulator, the finish/stats exchange for sockets).

    [shards] (default 1) > 1 routes the coordinator's global sketch
    merges through that many OCaml 5 worker domains
    ({!Wd_protocol.Sharded}); the published estimates are equal to the
    single-domain run by the sketch merge laws.  Not applicable to [EC]. *)

(** Generic variant over any {!Wd_sketch.Sketch_intf.DISTINCT_SKETCH} —
    used by the sketch-type ablation. *)
module Make_dc (Sketch : Wd_sketch.Sketch_intf.DISTINCT_SKETCH) : sig
  val run :
    ?cost_model:Wd_net.Network.cost_model ->
    ?transport:Wd_net.Transport.t ->
    ?item_batching:bool ->
    ?seed:int ->
    ?checkpoints:int ->
    ?error_samples:int ->
    ?confidence:float ->
    ?family:Sketch.family ->
    ?sink:Wd_obs.Sink.t ->
    ?metrics:Wd_obs.Metrics.t ->
    ?spans:bool ->
    ?faults:Wd_net.Faults.plan ->
    ?shards:int ->
    algorithm:Wd_protocol.Dc_tracker.algorithm ->
    theta:float ->
    alpha:float ->
    Stream.t ->
    dc_run
  (** Like {!run_dc}; [family] overrides the [(alpha, confidence)]-derived
      sketch family. *)
end

module Dc_fm : module type of Make_dc (Wd_sketch.Fm)
(** The FM instantiation backing {!run_dc}, exposed for runs that need an
    explicit FM family (e.g. the averaged-variant ablation). *)

(** {1 Distinct-sample runs} *)

type ds_run = {
  ds_algorithm : Wd_protocol.Ds_tracker.algorithm;
  ds_updates : int;
  ds_total_bytes : int;
  ds_bytes_up : int;
  ds_bytes_down : int;
  ds_sends : int;
  ds_final_level : int;
  ds_final_sample : (int * int) list;
  ds_distinct_estimate : float;
  ds_bytes_series : (int * int) array;
  ds_max_count_error : float;
      (** max over the final sample of the relative error of the tracked
          count vs the item's exact global count (Lemma 2 bounds this by
          [theta] for the approximate algorithms); with faults, exact
          counts exclude arrivals discarded at crashed sites *)
  ds_drops : int;
  ds_duplicates : int;
  ds_retries : int;
  ds_lost_updates : int;
}

val run_ds :
  ?cost_model:Wd_net.Network.cost_model ->
  ?transport:Wd_net.Transport.t ->
  ?seed:int ->
  ?checkpoints:int ->
  ?sink:Wd_obs.Sink.t ->
  ?spans:bool ->
  ?faults:Wd_net.Faults.plan ->
  algorithm:Wd_protocol.Ds_tracker.algorithm ->
  theta:float ->
  threshold:int ->
  Stream.t ->
  ds_run
(** [sink] is attached to the tracker and its byte ledger; [spans],
    [faults] and [transport] behave as in {!run_dc} (the transport is
    closed when the run completes). *)

(** {1 Distinct heavy-hitter runs} *)

type pair_stream = { psites : int array; vs : int array; ws : int array }
(** A multi-site stream of [(v, w)] pairs. *)

val pair_stream_length : pair_stream -> int
val pair_stream_sites : pair_stream -> int

val pair_stream_of_requests :
  Wd_workload.Http_trace.config ->
  Wd_workload.Http_trace.site_view ->
  Wd_workload.Http_trace.request array ->
  pair_stream
(** [(v, w) = (objectID, clientID)]: track the objects requested by the
    most distinct clients, as in Figure 7(c). *)

type hh_run = {
  hh_algorithm : Wd_protocol.Dc_tracker.algorithm;
  hh_updates : int;
  hh_total_bytes : int;
  hh_bytes_up : int;
  hh_bytes_down : int;
  hh_sends : int;
  hh_avg_norm_error : float;
      (** mean over the exact top-[k] keys of
          [|estimate - d_v| / distinct_pairs] — the paper reports this
          normalized estimation error ("< 0.1%") *)
  hh_topk_recall : float;
      (** fraction of the exact top-[k] keys present in the estimated
          top-[k] *)
  hh_exact_bytes : int;
      (** EC baseline on the same pair stream: one message per locally new
          pair *)
}

val run_hh :
  ?cost_model:Wd_net.Network.cost_model ->
  ?transport:Wd_net.Transport.t ->
  ?item_batching:bool ->
  ?seed:int ->
  ?top_k:int ->
  algorithm:Wd_protocol.Dc_tracker.algorithm ->
  theta:float ->
  config:Wd_aggregate.Fm_array.config ->
  pair_stream ->
  hh_run

(** {1 Ground truth helpers} *)

val true_distinct_prefixes : Stream.t -> samples:int -> (int * int) array
(** Exact distinct counts at [samples] evenly spaced prefixes. *)

val exact_dc_bytes : Stream.t -> int
(** Total bytes the EC baseline sends on this stream (header + item per
    locally-new item), computed without running a tracker. *)

val exact_ds_bytes : Stream.t -> int
(** Total bytes the EDS baseline sends (header + item per update). *)
