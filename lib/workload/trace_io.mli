(** Reading and writing multi-site streams as files.

    Two formats:

    - {e CSV}: one `site,item` pair per line (a header line
      `site,item` is written and tolerated on read) — interoperable with
      external tooling and real traces exported from flow logs;
    - {e binary}: a small magic header then fixed 16-byte little-endian
      records — compact and fast for large replays.

    Both preserve arrival order exactly, so an experiment on a saved
    trace reproduces the in-memory run bit for bit.

    Malformed input is rejected with the typed {!error} below — the same
    discipline as {!Wd_net.Wire.Frame.error} on the socket transport:
    loaders never guess, never silently shorten, and name what they
    found. *)

(** Why a load was rejected. *)
type error =
  | Bad_magic of { expected : string; got : string }
      (** The binary header is not [WDTRACE1]. *)
  | Truncated of { wanted : int; got : int }
      (** A read (header, length, or record) needed [wanted] bytes but
          the file ended after [got]. *)
  | Bad_count of int  (** The record-count field is negative. *)
  | Malformed_line of { line : int; text : string }
      (** A CSV line is not a [site,item] pair of integers with
          [site >= 0] (1-based line number). *)

exception Error of string * error
(** [Error (path, error)]: every loader failure.  A printer is
    registered, so uncaught errors render readably. *)

val error_to_string : error -> string

val save_csv : string -> Stream.t -> unit
(** [save_csv path stream] writes the stream (with a header line). *)

val load_csv : string -> Stream.t
(** Raises {!Error} with {!Malformed_line} on malformed input (wrong
    field count, non-integer fields, negative site). *)

val save_binary : string -> Stream.t -> unit

val load_binary : string -> Stream.t
(** Raises {!Error} with {!Bad_magic}, {!Truncated} or {!Bad_count};
    every strict prefix of a valid file is rejected, never silently
    shortened. *)
