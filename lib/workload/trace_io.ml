type error =
  | Bad_magic of { expected : string; got : string }
  | Truncated of { wanted : int; got : int }
  | Bad_count of int
  | Malformed_line of { line : int; text : string }

exception Error of string * error

let error_to_string = function
  | Bad_magic { expected; got } ->
    Printf.sprintf "bad magic: expected %S, got %S" expected got
  | Truncated { wanted; got } ->
    Printf.sprintf "truncated: wanted %d bytes, got %d" wanted got
  | Bad_count n -> Printf.sprintf "bad record count %d" n
  | Malformed_line { line; text } ->
    Printf.sprintf "line %d: malformed record %S" line text

let () =
  Printexc.register_printer (function
    | Error (path, e) ->
      Some (Printf.sprintf "Trace_io.Error (%s: %s)" path (error_to_string e))
    | _ -> None)

let with_out path f =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> f oc)

let with_in path f =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> f ic)

let save_csv path stream =
  with_out path (fun oc ->
      output_string oc "site,item\n";
      Stream.iter
        (fun ~site ~item -> Printf.fprintf oc "%d,%d\n" site item)
        stream)

let load_csv path =
  with_in path (fun ic ->
      let sites = ref [] and items = ref [] and lineno = ref 0 in
      (try
         while true do
           incr lineno;
           let line = String.trim (input_line ic) in
           if line <> "" && line <> "site,item" then
             let malformed () =
               raise (Error (path, Malformed_line { line = !lineno; text = line }))
             in
             match String.split_on_char ',' line with
             | [ s; v ] -> (
               match (int_of_string_opt (String.trim s),
                      int_of_string_opt (String.trim v)) with
               | Some site, Some item when site >= 0 ->
                 sites := site :: !sites;
                 items := item :: !items
               | _ -> malformed ())
             | _ -> malformed ()
         done
       with End_of_file -> ());
      Stream.make
        ~sites:(Array.of_list (List.rev !sites))
        ~items:(Array.of_list (List.rev !items)))

let magic = "WDTRACE1"

let save_binary path stream =
  with_out path (fun oc ->
      output_string oc magic;
      let n = Stream.length stream in
      let buf = Bytes.create 8 in
      Bytes.set_int64_le buf 0 (Int64.of_int n);
      output_bytes oc buf;
      let rec_buf = Bytes.create 16 in
      Stream.iter
        (fun ~site ~item ->
          Bytes.set_int64_le rec_buf 0 (Int64.of_int site);
          Bytes.set_int64_le rec_buf 8 (Int64.of_int item);
          output_bytes oc rec_buf)
        stream)

(* Read exactly [wanted] bytes or raise the typed truncation error with
   how far the file actually reached. *)
let read_exact path ic buf wanted =
  let got = ref 0 in
  let eof = ref false in
  while (not !eof) && !got < wanted do
    let r = input ic buf !got (wanted - !got) in
    if r = 0 then eof := true else got := !got + r
  done;
  if !got < wanted then raise (Error (path, Truncated { wanted; got = !got }))

let load_binary path =
  with_in path (fun ic ->
      let mlen = String.length magic in
      let header = Bytes.create mlen in
      read_exact path ic header mlen;
      if Bytes.to_string header <> magic then
        raise
          (Error
             (path, Bad_magic { expected = magic; got = Bytes.to_string header }));
      let buf = Bytes.create 8 in
      read_exact path ic buf 8;
      let n = Int64.to_int (Bytes.get_int64_le buf 0) in
      if n < 0 then raise (Error (path, Bad_count n));
      (* Bound the allocation by what the file can actually hold: a
         corrupted count field must surface as a typed truncation, not
         as Array.make blowing up on an astronomical length. *)
      let file_len = in_channel_length ic in
      if n > (file_len - mlen - 8) / 16 then begin
        let wanted =
          if n > (max_int - mlen - 8) / 16 then max_int else mlen + 8 + (16 * n)
        in
        raise (Error (path, Truncated { wanted; got = file_len }))
      end;
      let sites = Array.make n 0 and items = Array.make n 0 in
      let rec_buf = Bytes.create 16 in
      for j = 0 to n - 1 do
        read_exact path ic rec_buf 16;
        sites.(j) <- Int64.to_int (Bytes.get_int64_le rec_buf 0);
        items.(j) <- Int64.to_int (Bytes.get_int64_le rec_buf 8)
      done;
      Stream.make ~sites ~items)
