(* Communication envelopes: per-cell upper bounds on protocol traffic,
   against which measured bytes are normalized.  The bounds follow the
   paper's cost analyses (Theorem 1 and the per-algorithm down-traffic
   discussion for DC; Theorem 2's retained-item accounting for DS) but
   are envelopes, not tight constants — the acceptance ceilings absorb
   the constant-factor slack. *)

module Wire = Wd_net.Wire
module Dc = Wd_protocol.Dc_tracker
module Ds = Wd_protocol.Ds_tracker

let dc_sends_bound ~sites ~distinct ~theta =
  (* Theorem 1: each site crosses its (1 + theta/k) threshold ladder at
     most log_{1+theta/k} N0 times, plus one initial send. *)
  let k = Float.of_int sites in
  let n0 = Float.of_int (max 2 distinct) in
  k *. ((Float.log n0 /. Float.log (1.0 +. (theta /. k))) +. 1.0)

let dc_bound ~algorithm ~sites ~distinct ~theta ~sketch_bytes ~exact_bytes =
  match algorithm with
  | Dc.EC -> Float.of_int exact_bytes
  | _ ->
    let s = dc_sends_bound ~sites ~distinct ~theta in
    let k = Float.of_int sites in
    let sketch_msg = Float.of_int (Wire.message ~payload:sketch_bytes) in
    let count_msg = Float.of_int (Wire.message ~payload:Wire.count_bytes) in
    let up = s *. sketch_msg in
    (* Down-traffic shape is what separates the algorithms (Section 5):
       NS sends nothing back, SC broadcasts counts, SS broadcasts the
       merged sketch, LS refreshes only the triggering site. *)
    let down =
      match algorithm with
      | Dc.NS -> 0.0
      | Dc.SC -> s *. k *. count_msg
      | Dc.SS -> s *. k *. sketch_msg
      | Dc.LS -> s *. sketch_msg
      | Dc.EC -> assert false
    in
    up +. down

let ds_bound ~algorithm ~sites ~threshold ~theta ~max_mult ~updates
    ~exact_bytes =
  match algorithm with
  | Ds.EDS -> Float.of_int exact_bytes
  | _ ->
    (* Theorem 2 accounting: at most 2T items are retained per sampling
       level, levels never exceed log2 of the update count, and each
       retained item re-reports its count at most log_{1+theta} of its
       final multiplicity times (plus the insertion itself). *)
    let levels = Float.log2 (Float.of_int (max 2 updates)) +. 1.0 in
    let retained = 2.0 *. Float.of_int threshold *. levels in
    let reports_per_item =
      1.0
      +. (Float.log (Float.of_int (max 2 max_mult))
         /. Float.log (1.0 +. theta))
    in
    let pair_msg = Float.of_int (Wire.item_count_pairs 1) in
    let level_msg = Float.of_int (Wire.message ~payload:Wire.level_bytes) in
    let up = retained *. reports_per_item *. pair_msg in
    let down = levels *. Float.of_int sites *. level_msg in
    up +. down

let hh_bound ~exact_bytes = Float.of_int exact_bytes

let window_bound ~updates =
  Float.of_int (Wd_protocol.Window_tracker.exact_bytes ~updates)

let yz_hh_bound ~sites ~epsilon ~updates =
  (* Yi–Zhang round accounting: within one ~N-doubling round the global
     count grows by ~N and every report certifies at least
     delta = eps*~N/(2k) of growth (in a site total or an item count),
     so a round carries at most 4k/eps reports; rounds number log2 N.
     Each report ships an item and two absolute counts (and is acked);
     each round-advance broadcasts the new ~N to every site. *)
  let k = Float.of_int sites in
  let rounds = Float.log2 (Float.of_int (max 2 updates)) +. 1.0 in
  let report_msg =
    Float.of_int
      (Wire.message ~payload:(Wire.item_bytes + (2 * Wire.count_bytes))
      + Wire.message ~payload:Wire.ack_bytes)
  in
  let bcast_msg = Float.of_int (Wire.message ~payload:Wire.count_bytes) in
  (((4.0 *. k /. epsilon) +. k) *. rounds *. report_msg)
  +. (rounds *. k *. bcast_msg)

let yz_q_bound ~sites ~epsilon ~updates ~distinct =
  (* Site-local dedup caps shipped items at min(updates, k*D); the
     D-doubling argument caps flush messages at 4k/eps per round over
     log2 D rounds (each flush certifies delta = eps*~D/(2k) fresh
     values), plus one trailing partial per site and the round
     broadcasts. *)
  let k = Float.of_int sites in
  let d = Float.of_int (max 2 distinct) in
  let rounds = Float.log2 d +. 1.0 in
  let items = Float.min (Float.of_int updates) (k *. d) in
  let flushes = ((4.0 *. k /. epsilon) +. k) *. rounds in
  let flush_overhead =
    Float.of_int
      (Wire.message ~payload:0 + Wire.message ~payload:Wire.ack_bytes)
  in
  let bcast_msg = Float.of_int (Wire.message ~payload:Wire.count_bytes) in
  (items *. Float.of_int Wire.item_bytes)
  +. (flushes *. flush_overhead)
  +. (rounds *. k *. bcast_msg)

(* Acceptance ceilings on measured/bound: how much constant-factor slack
   each envelope is granted before the bytes check fails.  The exact
   baselines are computed, not bounded, so they get a whisker; the
   sketch protocols get room for delta-encoding overheads and the
   non-worst-case stream reaching thresholds faster than the ladder
   argument assumes; HH and windows are normalized against their exact
   baselines, which the approximate protocols are merely expected not to
   exceed wildly at this scale. *)
let ceiling cell =
  match cell.Spec.protocol with
  | Spec.Dc Dc.EC | Spec.Ds Ds.EDS -> 1.01
  | Spec.Dc _ -> 2.0
  | Spec.Ds _ -> 3.0
  | Spec.Hh _ -> 12.0
      (* At the eval's scaled-down trace the FM-array refreshes dominate
         and cost several times the exact pair-forwarding baseline
         (measured ~6-8x); the paper's win materializes at full trace
         scale.  The ratio is tracked against the committed baseline, so
         drift is still gated — the ceiling only needs to catch
         blow-ups. *)
  | Spec.Window _ -> 3.0
  | Spec.Yz_hh | Spec.Yz_q -> 1.5
      (* The round accounting above is already an over-count (streams
         reach thresholds faster than the doubling argument assumes),
         so measured traffic should sit well inside the envelope. *)

(* ------------------------------------------------------------------ *)
(* Optimality gap: per-cell lower-bound envelopes on the traffic any
   correct protocol must pay, against which measured bytes are reported
   as [opt_ratio = measured / optimum].  The distinct-tracking bound is
   the paper's Omega(k + sqrt(k)/alpha) message count (each message
   carrying an alpha-accurate summary, priced at the cell's own
   measured sketch wire size); the Yi–Zhang rows use their
   Omega((k/eps) log n) message bound, which their algorithms match up
   to constants — that near-1 ratio is exactly the "optimal tracking"
   claim the eval gates.  Exact baselines pay their computed floor
   (every first occurrence, or every update, crosses the wire once).
   These are envelopes, not tight constants: {!opt_ceiling} grants each
   family its constant-factor slack, and the committed baseline gates
   drift on top. *)

let distinct_msgs_lb ~sites ~alpha =
  let k = Float.of_int sites in
  k +. (Float.sqrt k /. alpha)

let opt_lower_bound cell ~sites ~updates ~distinct ~threshold ~sketch_bytes =
  let alpha = cell.Spec.alpha in
  let msg p = Float.of_int (Wire.message ~payload:p) in
  match cell.Spec.protocol with
  | Spec.Dc Dc.EC ->
    (* EC must report each globally-new value at least once. *)
    Float.of_int distinct *. msg Wire.item_bytes
  | Spec.Ds Ds.EDS -> Float.of_int updates *. msg Wire.item_bytes
  | Spec.Ds _ ->
    (* The coordinator's final sample of T items (with counts) must
       have crossed the wire at least once, and every site must learn
       each sampling level. *)
    let levels = Float.log2 (Float.of_int (max 2 updates)) in
    (Float.of_int threshold *. msg (Wire.item_count_pairs 1))
    +. (levels *. Float.of_int sites *. msg Wire.level_bytes)
  | Spec.Dc _ ->
    distinct_msgs_lb ~sites ~alpha *. msg sketch_bytes
  | Spec.Hh _ ->
    (* Per-cell distinct trackers share each frame, so the floor is the
       message bound priced at bare count refreshes. *)
    distinct_msgs_lb ~sites ~alpha *. msg Wire.count_bytes
  | Spec.Window _ ->
    (* Every window width behaves as a fresh tracking epoch. *)
    let epochs = Float.of_int (max 1 (updates / max 1 (updates / 4))) in
    distinct_msgs_lb ~sites ~alpha *. epochs *. msg Wire.count_bytes
  | Spec.Yz_hh ->
    let k = Float.of_int sites in
    let rounds = Float.log2 (Float.of_int (max 2 updates)) in
    k /. alpha *. rounds
    *. msg (Wire.item_bytes + (2 * Wire.count_bytes))
  | Spec.Yz_q ->
    (* Duplicate-resilient ranks need each value's first arrival
       accounted once somewhere; message floor as for YZ-HH over the
       distinct domain. *)
    let k = Float.of_int sites in
    let rounds = Float.log2 (Float.of_int (max 2 distinct)) in
    Float.max
      (k /. alpha *. rounds *. msg Wire.count_bytes)
      (Float.of_int distinct *. Float.of_int Wire.item_bytes)

(* Ceilings on [measured / optimum], set from measured headroom at the
   committed grid's scale (roughly 2x the observed ratio, so genuine
   blow-ups trip the gate while seed jitter does not).  The sketch
   protocols' gaps are dominated by how far the send count sits above
   the ladder bound at this scale; the exact baselines sit within a
   whisker of their floors. *)
let opt_ceiling cell =
  match cell.Spec.protocol with
  (* Exact baselines pay acks and headers the one-way floor ignores:
     measured/optimum lands near 1.7, never near 1. *)
  | Spec.Dc Dc.EC | Spec.Ds Ds.EDS -> 2.0
  | Spec.Dc _ -> 45.0 (* seed-42 grid max 20.4 (bjkst a=0.1) *)
  | Spec.Ds _ -> 25.0 (* seed-42 grid max 10.6 (LCO a=0.05) *)
  | Spec.Hh _ -> 12_000.0
      (* FM-array refreshes ship whole cell arrays against a bare-count
         floor; the gap is large (seed-42 grid: 5.6e3) but stable, and
         the YZ-HH row beside it is the optimal-contender comparison
         that matters. *)
  | Spec.Window _ -> 4_000.0
  | Spec.Yz_hh -> 5.0 (* seed-42 grid max 2.2 *)
  | Spec.Yz_q -> 8.0 (* seed-42 grid max 3.4 *)
