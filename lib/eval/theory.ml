(* Communication envelopes: per-cell upper bounds on protocol traffic,
   against which measured bytes are normalized.  The bounds follow the
   paper's cost analyses (Theorem 1 and the per-algorithm down-traffic
   discussion for DC; Theorem 2's retained-item accounting for DS) but
   are envelopes, not tight constants — the acceptance ceilings absorb
   the constant-factor slack. *)

module Wire = Wd_net.Wire
module Dc = Wd_protocol.Dc_tracker
module Ds = Wd_protocol.Ds_tracker

let dc_sends_bound ~sites ~distinct ~theta =
  (* Theorem 1: each site crosses its (1 + theta/k) threshold ladder at
     most log_{1+theta/k} N0 times, plus one initial send. *)
  let k = Float.of_int sites in
  let n0 = Float.of_int (max 2 distinct) in
  k *. ((Float.log n0 /. Float.log (1.0 +. (theta /. k))) +. 1.0)

let dc_bound ~algorithm ~sites ~distinct ~theta ~sketch_bytes ~exact_bytes =
  match algorithm with
  | Dc.EC -> Float.of_int exact_bytes
  | _ ->
    let s = dc_sends_bound ~sites ~distinct ~theta in
    let k = Float.of_int sites in
    let sketch_msg = Float.of_int (Wire.message ~payload:sketch_bytes) in
    let count_msg = Float.of_int (Wire.message ~payload:Wire.count_bytes) in
    let up = s *. sketch_msg in
    (* Down-traffic shape is what separates the algorithms (Section 5):
       NS sends nothing back, SC broadcasts counts, SS broadcasts the
       merged sketch, LS refreshes only the triggering site. *)
    let down =
      match algorithm with
      | Dc.NS -> 0.0
      | Dc.SC -> s *. k *. count_msg
      | Dc.SS -> s *. k *. sketch_msg
      | Dc.LS -> s *. sketch_msg
      | Dc.EC -> assert false
    in
    up +. down

let ds_bound ~algorithm ~sites ~threshold ~theta ~max_mult ~updates
    ~exact_bytes =
  match algorithm with
  | Ds.EDS -> Float.of_int exact_bytes
  | _ ->
    (* Theorem 2 accounting: at most 2T items are retained per sampling
       level, levels never exceed log2 of the update count, and each
       retained item re-reports its count at most log_{1+theta} of its
       final multiplicity times (plus the insertion itself). *)
    let levels = Float.log2 (Float.of_int (max 2 updates)) +. 1.0 in
    let retained = 2.0 *. Float.of_int threshold *. levels in
    let reports_per_item =
      1.0
      +. (Float.log (Float.of_int (max 2 max_mult))
         /. Float.log (1.0 +. theta))
    in
    let pair_msg = Float.of_int (Wire.item_count_pairs 1) in
    let level_msg = Float.of_int (Wire.message ~payload:Wire.level_bytes) in
    let up = retained *. reports_per_item *. pair_msg in
    let down = levels *. Float.of_int sites *. level_msg in
    up +. down

let hh_bound ~exact_bytes = Float.of_int exact_bytes

let window_bound ~updates =
  Float.of_int (Wd_protocol.Window_tracker.exact_bytes ~updates)

(* Acceptance ceilings on measured/bound: how much constant-factor slack
   each envelope is granted before the bytes check fails.  The exact
   baselines are computed, not bounded, so they get a whisker; the
   sketch protocols get room for delta-encoding overheads and the
   non-worst-case stream reaching thresholds faster than the ladder
   argument assumes; HH and windows are normalized against their exact
   baselines, which the approximate protocols are merely expected not to
   exceed wildly at this scale. *)
let ceiling cell =
  match cell.Spec.protocol with
  | Spec.Dc Dc.EC | Spec.Ds Ds.EDS -> 1.01
  | Spec.Dc _ -> 2.0
  | Spec.Ds _ -> 3.0
  | Spec.Hh _ -> 12.0
      (* At the eval's scaled-down trace the FM-array refreshes dominate
         and cost several times the exact pair-forwarding baseline
         (measured ~6-8x); the paper's win materializes at full trace
         scale.  The ratio is tracked against the committed baseline, so
         drift is still gated — the ceiling only needs to catch
         blow-ups. *)
  | Spec.Window _ -> 3.0
