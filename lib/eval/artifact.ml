(* The wd-eval/1 result artifact: versioned JSON (committed baselines,
   CI uploads), CSV (spreadsheet digestion), and the baseline diff that
   gates CI. *)

module Json = Wd_obs.Json

let version = "wd-eval/1"

type quantiles = { q_p50 : float; q_p90 : float; q_max : float }

type opt_gap = {
  opt_lb_bytes : float;
  opt_ratio_mean : float;
  opt_ratio_max : float;
  opt_ceiling : float;
  opt_pass : bool;
}

type cell_result = {
  id : string;
  family : string;
  algorithm : string;
  sketch : string;
  alpha : float;
  delta : float;
  sites : int;
  events : int;
  workload : string;
  transport : string;
  faults : string option;
  topology : string option;
  reps : int;
  successes : int;
  accept_pass : bool;
  p_value : float;
  err_mean : float;
  err_p50 : float;
  err_p90 : float;
  err_max : float;
  bytes_mean : float;
  ratio_mean : float;
  ratio_max : float;
  ratio_ceiling : float;
  bytes_pass : bool;
  opt : opt_gap option;
      (* measured bytes against the Theory.opt_lower_bound optimum;
         absent in artifacts written before the optimality gate existed
         (decode is lenient, and such cells pass the gate trivially) *)
  msgs_mean : float;
  wall_s : float;  (* informational only: never diffed *)
  (* Timing digests, informational only like wall_s: per-repetition wall
     seconds, and observe_batch span durations (ns) when the cell ran
     with a span recorder.  Absent in artifacts written before these
     fields existed — decode is lenient so old baselines still load. *)
  rep_wall_s : quantiles option;
  batch_span_ns : quantiles option;
}

let cell_pass c =
  c.accept_pass && c.bytes_pass
  && match c.opt with None -> true | Some o -> o.opt_pass

type t = {
  grid : string;
  base_seed : int;
  reps : int;
  significance : float;
  cells : cell_result list;
}

let pass t = List.for_all cell_pass t.cells

(* ------------------------------------------------------------------ *)
(* JSON *)

let quantiles_to_json q =
  Json.Obj
    [
      ("p50", Json.Float q.q_p50);
      ("p90", Json.Float q.q_p90);
      ("max", Json.Float q.q_max);
    ]

let quantiles_of_json j =
  match
    ( Option.bind (Json.member "p50" j) Json.to_float,
      Option.bind (Json.member "p90" j) Json.to_float,
      Option.bind (Json.member "max" j) Json.to_float )
  with
  | Some q_p50, Some q_p90, Some q_max -> Some { q_p50; q_p90; q_max }
  | _ -> None

let opt_to_json o =
  Json.Obj
    [
      ("lb_bytes", Json.Float o.opt_lb_bytes);
      ("ratio_mean", Json.Float o.opt_ratio_mean);
      ("ratio_max", Json.Float o.opt_ratio_max);
      ("ceiling", Json.Float o.opt_ceiling);
      ("pass", Json.Bool o.opt_pass);
    ]

let opt_of_json j =
  match
    ( Option.bind (Json.member "lb_bytes" j) Json.to_float,
      Option.bind (Json.member "ratio_mean" j) Json.to_float,
      Option.bind (Json.member "ratio_max" j) Json.to_float,
      Option.bind (Json.member "ceiling" j) Json.to_float,
      Option.bind (Json.member "pass" j) Json.to_bool )
  with
  | ( Some opt_lb_bytes,
      Some opt_ratio_mean,
      Some opt_ratio_max,
      Some opt_ceiling,
      Some opt_pass ) ->
    Some { opt_lb_bytes; opt_ratio_mean; opt_ratio_max; opt_ceiling; opt_pass }
  | _ -> None

let cell_to_json c =
  Json.Obj
    [
      ("id", Json.Str c.id);
      ("family", Json.Str c.family);
      ("algorithm", Json.Str c.algorithm);
      ("sketch", Json.Str c.sketch);
      ("alpha", Json.Float c.alpha);
      ("delta", Json.Float c.delta);
      ("sites", Json.Int c.sites);
      ("events", Json.Int c.events);
      ("workload", Json.Str c.workload);
      ("transport", Json.Str c.transport);
      ( "faults",
        match c.faults with None -> Json.Null | Some f -> Json.Str f );
      ( "topology",
        match c.topology with None -> Json.Null | Some t -> Json.Str t );
      ("reps", Json.Int c.reps);
      ("successes", Json.Int c.successes);
      ("accept_pass", Json.Bool c.accept_pass);
      ("p_value", Json.Float c.p_value);
      ("err_mean", Json.Float c.err_mean);
      ("err_p50", Json.Float c.err_p50);
      ("err_p90", Json.Float c.err_p90);
      ("err_max", Json.Float c.err_max);
      ("bytes_mean", Json.Float c.bytes_mean);
      ("ratio_mean", Json.Float c.ratio_mean);
      ("ratio_max", Json.Float c.ratio_max);
      ("ratio_ceiling", Json.Float c.ratio_ceiling);
      ("bytes_pass", Json.Bool c.bytes_pass);
      ("opt", (match c.opt with None -> Json.Null | Some o -> opt_to_json o));
      ("msgs_mean", Json.Float c.msgs_mean);
      ("wall_s", Json.Float c.wall_s);
      ( "rep_wall_s",
        match c.rep_wall_s with
        | None -> Json.Null
        | Some q -> quantiles_to_json q );
      ( "batch_span_ns",
        match c.batch_span_ns with
        | None -> Json.Null
        | Some q -> quantiles_to_json q );
    ]

let to_json t =
  Json.Obj
    [
      ("version", Json.Str version);
      ("grid", Json.Str t.grid);
      ("base_seed", Json.Int t.base_seed);
      ("reps", Json.Int t.reps);
      ("significance", Json.Float t.significance);
      ("pass", Json.Bool (pass t));
      ("cells", Json.List (List.map cell_to_json t.cells));
    ]

(* Total decoding with one error message per missing/mistyped field. *)
let field name conv j =
  match Option.bind (Json.member name j) conv with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing or mistyped field %S" name)

let ( let* ) = Result.bind

let cell_of_json j =
  let str n = field n Json.to_str j in
  let int n = field n Json.to_int j in
  let flt n = field n Json.to_float j in
  let bool n = field n Json.to_bool j in
  let* id = str "id" in
  let* family = str "family" in
  let* algorithm = str "algorithm" in
  let* sketch = str "sketch" in
  let* alpha = flt "alpha" in
  let* delta = flt "delta" in
  let* sites = int "sites" in
  let* events = int "events" in
  let* workload = str "workload" in
  let* transport = str "transport" in
  let faults = Option.bind (Json.member "faults" j) Json.to_str in
  let topology = Option.bind (Json.member "topology" j) Json.to_str in
  let* reps = int "reps" in
  let* successes = int "successes" in
  let* accept_pass = bool "accept_pass" in
  let* p_value = flt "p_value" in
  let* err_mean = flt "err_mean" in
  let* err_p50 = flt "err_p50" in
  let* err_p90 = flt "err_p90" in
  let* err_max = flt "err_max" in
  let* bytes_mean = flt "bytes_mean" in
  let* ratio_mean = flt "ratio_mean" in
  let* ratio_max = flt "ratio_max" in
  let* ratio_ceiling = flt "ratio_ceiling" in
  let* bytes_pass = bool "bytes_pass" in
  (* Lenient like "faults": the optimality gate postdates wd-eval/1's
     first artifacts, and absent groups pass trivially. *)
  let opt = Option.bind (Json.member "opt" j) opt_of_json in
  let* msgs_mean = flt "msgs_mean" in
  let* wall_s = flt "wall_s" in
  (* Informational timing digests: lenient like "faults", so artifacts
     written before these fields existed (or by newer writers with more
     of them) still load. *)
  let rep_wall_s = Option.bind (Json.member "rep_wall_s" j) quantiles_of_json in
  let batch_span_ns =
    Option.bind (Json.member "batch_span_ns" j) quantiles_of_json
  in
  Ok
    {
      id;
      family;
      algorithm;
      sketch;
      alpha;
      delta;
      sites;
      events;
      workload;
      transport;
      faults;
      topology;
      reps;
      successes;
      accept_pass;
      p_value;
      err_mean;
      err_p50;
      err_p90;
      err_max;
      bytes_mean;
      ratio_mean;
      ratio_max;
      ratio_ceiling;
      bytes_pass;
      opt;
      msgs_mean;
      wall_s;
      rep_wall_s;
      batch_span_ns;
    }

let of_json j =
  let* v = field "version" Json.to_str j in
  if v <> version then
    Error (Printf.sprintf "unsupported artifact version %S (want %S)" v version)
  else
    let* grid = field "grid" Json.to_str j in
    let* base_seed = field "base_seed" Json.to_int j in
    let* reps = field "reps" Json.to_int j in
    let* significance = field "significance" Json.to_float j in
    let* cells =
      match Json.member "cells" j with
      | Some (Json.List l) ->
        List.fold_left
          (fun acc c ->
            let* acc = acc in
            let* c = cell_of_json c in
            Ok (c :: acc))
          (Ok []) l
        |> Result.map List.rev
      | _ -> Error "missing or mistyped field \"cells\""
    in
    Ok { grid; base_seed; reps; significance; cells }

let of_string s =
  let* j = Json.of_string s in
  of_json j

let save ~path t =
  let oc = open_out path in
  output_string oc (Json.to_string_pretty (to_json t));
  output_char oc '\n';
  close_out oc

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | s -> of_string s
  | exception Sys_error e -> Error e

(* ------------------------------------------------------------------ *)
(* CSV *)

let csv_header =
  "id,family,algorithm,sketch,alpha,delta,sites,events,workload,transport,\
   faults,topology,reps,successes,accept_pass,p_value,err_mean,err_p50,\
   err_p90,err_max,bytes_mean,ratio_mean,ratio_max,ratio_ceiling,bytes_pass,\
   opt_lb_bytes,opt_ratio_mean,opt_ratio_max,opt_ceiling,opt_pass,\
   msgs_mean,wall_s,wall_p50_s,wall_p90_s,wall_max_s,batch_p50_ns,\
   batch_p90_ns,batch_max_ns"

let to_csv t =
  let b = Buffer.create 1024 in
  Buffer.add_string b csv_header;
  Buffer.add_char b '\n';
  let q3 fmt = function
    | None -> ",,"
    | Some q ->
      Printf.sprintf "%s,%s,%s" (fmt q.q_p50) (fmt q.q_p90) (fmt q.q_max)
  in
  let opt5 = function
    | None -> ",,,,"
    | Some o ->
      Printf.sprintf "%.6g,%.6g,%.6g,%.6g,%b" o.opt_lb_bytes o.opt_ratio_mean
        o.opt_ratio_max o.opt_ceiling o.opt_pass
  in
  List.iter
    (fun c ->
      Buffer.add_string b
        (Printf.sprintf
           "%s,%s,%s,%s,%g,%g,%d,%d,%s,%s,%s,%s,%d,%d,%b,%.6g,%.6g,%.6g,\
            %.6g,%.6g,%.6g,%.6g,%.6g,%.6g,%b,%s,%.6g,%.3f,%s,%s\n"
           c.id c.family c.algorithm c.sketch c.alpha c.delta c.sites c.events
           c.workload c.transport
           (Option.value c.faults ~default:"")
           (Option.value c.topology ~default:"")
           c.reps c.successes c.accept_pass c.p_value c.err_mean c.err_p50
           c.err_p90 c.err_max c.bytes_mean c.ratio_mean c.ratio_max
           c.ratio_ceiling c.bytes_pass (opt5 c.opt) c.msgs_mean c.wall_s
           (q3 (Printf.sprintf "%.3f") c.rep_wall_s)
           (q3 (Printf.sprintf "%.0f") c.batch_span_ns)))
    t.cells;
  Buffer.contents b

let save_csv ~path t =
  let oc = open_out path in
  output_string oc (to_csv t);
  close_out oc

(* ------------------------------------------------------------------ *)
(* Baseline diff *)

type diff = {
  regressions : string list;
  notes : string list;  (* non-gating observations: new cells, improvements *)
}

let clean d = d.regressions = []

(* Tolerances: a current run regresses when it fails where the baseline
   passed, or drifts past 1.5x the baseline on the traffic ratio or the
   p90 error (with an absolute floor so near-zero baselines don't turn
   noise into alarms).  Wall time is never compared. *)
let ratio_slack = 1.5

let err_floor = 0.01

let diff ~baseline ~current =
  let regressions = ref [] in
  let notes = ref [] in
  let reg fmt = Printf.ksprintf (fun s -> regressions := s :: !regressions) fmt in
  let note fmt = Printf.ksprintf (fun s -> notes := s :: !notes) fmt in
  let current_ids =
    List.fold_left (fun acc c -> c.id :: acc) [] current.cells
  in
  List.iter
    (fun b ->
      match List.find_opt (fun c -> c.id = b.id) current.cells with
      | None -> reg "%s: cell present in baseline but missing from this run" b.id
      | Some c ->
        if b.accept_pass && not c.accept_pass then
          reg "%s: accuracy acceptance now fails (%d/%d in-band, p=%.4g)" c.id
            c.successes c.reps c.p_value;
        if b.bytes_pass && not c.bytes_pass then
          reg "%s: traffic now exceeds its envelope (ratio %.3g > ceiling %.3g)"
            c.id c.ratio_max c.ratio_ceiling;
        if c.ratio_max > b.ratio_max *. ratio_slack then
          reg "%s: traffic ratio %.3g drifted past %.1fx the baseline %.3g" c.id
            c.ratio_max ratio_slack b.ratio_max;
        (match (b.opt, c.opt) with
        | Some bo, Some co ->
          if bo.opt_pass && not co.opt_pass then
            reg
              "%s: optimality gap now exceeds its ceiling (ratio %.3g > \
               %.3g)"
              c.id co.opt_ratio_max co.opt_ceiling;
          if co.opt_ratio_max > bo.opt_ratio_max *. ratio_slack then
            reg "%s: optimality ratio %.3g drifted past %.1fx the baseline %.3g"
              c.id co.opt_ratio_max ratio_slack bo.opt_ratio_max
        | Some _, None ->
          reg "%s: optimality gap present in baseline but missing here" c.id
        | None, _ -> ());
        if c.err_p90 > Float.max (b.err_p90 *. ratio_slack) (b.err_p90 +. err_floor)
        then
          reg "%s: p90 error %.4g drifted past the baseline %.4g" c.id c.err_p90
            b.err_p90;
        if (not b.accept_pass) && c.accept_pass then
          note "%s: accuracy acceptance newly passes" c.id)
    baseline.cells;
  List.iter
    (fun id ->
      if not (List.exists (fun b -> b.id = id) baseline.cells) then
        note "%s: new cell, not in baseline" id)
    current_ids;
  { regressions = List.rev !regressions; notes = List.rev !notes }
