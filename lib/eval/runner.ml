(* Execute experiment-matrix cells: R seeded repetitions per cell
   through the Simulation drivers (or a direct Window_tracker drive),
   aggregated into Artifact.cell_result records with the binomial
   acceptance verdict attached. *)

module Sim = Whats_different.Simulation
module Stream = Wd_workload.Stream
module Gen = Wd_workload.Stream_gen
module Http = Wd_workload.Http_trace
module Dc = Wd_protocol.Dc_tracker
module Ds = Wd_protocol.Ds_tracker
module W = Wd_protocol.Window_tracker
module Socket = Wd_net.Transport_socket
module Tcp = Wd_net.Transport_tcp
module Metrics = Wd_obs.Metrics
module Sink = Wd_obs.Sink
module Event = Wd_obs.Event
module Query = Wd_view.Query

module Dc_bjkst = Sim.Make_dc (Wd_sketch.Bjkst)
module Dc_hll = Sim.Make_dc (Wd_sketch.Hyperloglog)
module Dc_fmc = Sim.Make_dc (Wd_sketch.Fm_concentrated)

let sketch_estimator (cell : Spec.cell) =
  match cell.estimator with
  | Spec.Classic -> Wd_sketch.Sketch_intf.Classic
  | Spec.Mle -> Wd_sketch.Sketch_intf.Mle

type config = {
  reps : int;
  base_seed : int;
  significance : float;
  handicap : float;
  ds_threshold : int;
  socket_dir : string;
  progress : (string -> unit) option;
  metrics : Metrics.t option;
}

let default_config =
  {
    reps = 5;
    base_seed = 42;
    significance = 0.005;
    handicap = 1.0;
    ds_threshold = 400;
    socket_dir = Filename.get_temp_dir_name ();
    progress = None;
    metrics = None;
  }

(* One repetition's measurements, before aggregation. *)
type rep = { err : float; success : bool; bytes : int; msgs : int }

(* Hierarchical HTTP cells run the per-server view (29 sites under the
   tree's regional aggregators — the paper's CDN deployment); flat HTTP
   cells keep the 4-region site view. *)
let http_site_view (cell : Spec.cell) =
  if cell.topology = None then Http.Per_region else Http.Per_server

let build_stream (cell : Spec.cell) ~seed =
  let sites = cell.sites and events = cell.events in
  match cell.workload with
  | Spec.Zipf ->
    let universe =
      max 16 (Float.to_int (Float.of_int events /. Float.max 1.0 cell.dup))
    in
    Gen.zipf ~seed ~sites ~events ~universe ()
  | Spec.Two_phase ->
    (* k*n + k*k*n events total: solve per-site n for the event target. *)
    let per_site = max 20 (events / (sites * (sites + 1))) in
    Wd_workload.Two_phase.generate ~seed ~sites ~per_site ()
  | Spec.Http_trace ->
    let cfg =
      Http.scaled ~seed (Float.of_int events /. Float.of_int Http.default.requests)
    in
    Http.view cfg Http.Object_id (http_site_view cell) (Http.generate cfg)

let parse_topology (cell : Spec.cell) ~sites =
  match cell.topology with
  | None -> None
  | Some spec -> (
    match Wd_net.Topology.of_spec ~sites spec with
    | Ok t -> Some t
    | Error e ->
      failwith
        (Printf.sprintf "cell %s: bad topology spec: %s" (Spec.id cell) e))

let parse_faults (cell : Spec.cell) ~seed =
  match cell.faults with
  | None -> Wd_net.Faults.none
  | Some spec -> (
    match Wd_net.Faults.of_spec ~seed spec with
    | Ok plan -> plan
    | Error e ->
      failwith (Printf.sprintf "cell %s: bad fault spec: %s" (Spec.id cell) e))

(* Wire size of a fully loaded sketch of the cell's (honest, i.e.
   handicap-free) family — the message-size input of the Theory
   envelopes. *)
let sketch_wire_bytes (cell : Spec.cell) ~seed (stream : Stream.t) =
  let alpha = Spec.sketch_alpha cell and delta = cell.delta in
  let measure (module S : Wd_sketch.Sketch_intf.DISTINCT_SKETCH) =
    let t = S.of_params ~alpha ~delta ~seed in
    S.add_batch t stream.Stream.items;
    S.size_bytes t
  in
  match cell.sketch with
  | Spec.Fm -> measure (module Wd_sketch.Fm)
  | Spec.Bjkst -> measure (module Wd_sketch.Bjkst)
  | Spec.Hll -> measure (module Wd_sketch.Hyperloglog)
  | Spec.Fmc -> measure (module Wd_sketch.Fm_concentrated)

(* Run [f transport] with one forked relay process per site, wdmon
   coord --spawn style: children serve frames until the run closes the
   transport, then exit without flushing the parent's inherited stdout
   buffer.  Any child still alive after [f] (or an exception) is
   killed before reaping. *)
let with_socket_sites ~dir ~sites ~seed f =
  let path = Printf.sprintf "%s/wde-%d-%d.sock" dir (Unix.getpid ()) seed in
  let children =
    List.init sites (fun site ->
      match Unix.fork () with
      | 0 ->
        (try ignore (Socket.Site.run ~path ~site () : Socket.site_report)
         with _ -> ());
        Unix._exit 0
      | pid -> pid)
  in
  let reap () =
    List.iter
      (fun pid ->
        (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
        try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
      children
  in
  Fun.protect ~finally:reap (fun () ->
    let coord = Socket.Coordinator.connect ~timeout:30.0 ~path ~sites () in
    f (Socket.Coordinator.pack coord))

(* Same shape for the TCP backend: multiplexed relay processes, two
   sites each, forked once the listener has its (ephemeral) port. *)
let with_tcp_relays ~sites f =
  let children = ref [] in
  let reap () =
    List.iter
      (fun pid ->
        (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
        try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
      !children
  in
  let ranges =
    let rec go first acc =
      if first >= sites then List.rev acc
      else
        let count = min 2 (sites - first) in
        go (first + count) ((first, count) :: acc)
    in
    go 0 []
  in
  Fun.protect ~finally:reap (fun () ->
    let coord =
      Tcp.Coordinator.connect ~timeout:30.0 ~port:0 ~sites
        ~on_listening:(fun port ->
          children :=
            List.map
              (fun (first_site, count) ->
                match Unix.fork () with
                | 0 ->
                  (try
                     ignore
                       (Tcp.Relay.run ~port ~first_site ~count ()
                         : Wd_net.Frame_io.site_report)
                   with _ -> ());
                  Unix._exit 0
                | pid -> pid)
              ranges)
        ()
    in
    f (Tcp.Coordinator.pack coord))

(* ------------------------------------------------------------------ *)
(* Per-protocol repetitions.  Each returns the rep measurements plus
   the Theory envelope (computed once per repetition: workloads are
   regenerated per seed, so the envelope inputs move with them). *)

(* Key-class fanout satellites for a multi-view cell: [views - 1]
   standing queries, each scoped to one residue class of the item key,
   all sharing the primary's hash-once plane via the Fanout sketch. *)
let dc_satellites (cell : Spec.cell) ~theta ~alpha algorithm =
  let sats = cell.views - 1 in
  List.init sats (fun i ->
      Query.dc
        ~name:(Printf.sprintf "v%d" (i + 1))
        ~sketch:Query.Fanout
        ~selector:(Query.Key_mod { modulus = sats; residue = i })
        ~theta ~alpha algorithm)

let query_sketch = function
  | Spec.Fm -> Query.Fm
  | Spec.Bjkst -> Query.Bjkst
  | Spec.Hll -> Query.Hll
  | Spec.Fmc -> Query.Fmc

let dc_rep cfg (cell : Spec.cell) ~seed ?transport ?sink ?spans stream =
  let theta = Spec.theta cell in
  (* The injected-bug dial: scaling sketch accuracy by sqrt(h) is
     exactly an h-fold cut in FM repetitions (m ~ 1/accuracy^2). *)
  let acc = Spec.sketch_alpha cell *. Float.sqrt cfg.handicap in
  let delta = cell.delta in
  let faults = parse_faults cell ~seed:(seed + 500) in
  let algorithm =
    match cell.protocol with Spec.Dc a -> a | _ -> assert false
  in
  let est = sketch_estimator cell in
  let topology = parse_topology cell ~sites:(Stream.num_sites stream) in
  let swb = sketch_wire_bytes cell ~seed stream in
  let opt_lb =
    Theory.opt_lower_bound cell ~sites:(Stream.num_sites stream)
      ~updates:(Stream.length stream) ~distinct:(Stream.distinct_count stream)
      ~threshold:cfg.ds_threshold ~sketch_bytes:swb
  in
  if cell.views > 1 || topology <> None then begin
    (* Multi-view and hierarchical cells go through the registry entry
       point; the primary runs at [seed] and must match the standalone
       tracker, so the acceptance judgement below is unchanged.  Tree
       cells' bytes are the backbone-inclusive grand total. *)
    let run =
      Sim.run ?transport ?topology ?sink ?spans ~seed ~faults
        ~views:(dc_satellites cell ~theta ~alpha:acc algorithm)
        (Query.dc
           ~sketch:(query_sketch cell.sketch)
           ~estimator:est
           ~confidence:(1.0 -. delta)
           ~theta ~alpha:acc algorithm)
        stream
    in
    let truth = max 1 run.Sim.final_truth in
    let err =
      Float.abs (run.Sim.final_estimate -. Float.of_int truth)
      /. Float.of_int truth
    in
    let series = run.Sim.error_series in
    let n = Array.length series in
    let tail = Array.sub series (n / 2) (n - (n / 2)) in
    let in_band =
      Array.fold_left
        (fun a (_, e) -> if e <= cell.alpha then a + 1 else a)
        0 tail
    in
    let coverage =
      Float.of_int in_band /. Float.of_int (max 1 (Array.length tail))
    in
    let success =
      err <= cell.alpha && coverage >= 1.0 -. (2.0 *. cell.delta)
    in
    let bound =
      Theory.dc_bound ~algorithm ~sites:(Stream.num_sites stream)
        ~distinct:(Stream.distinct_count stream) ~theta ~sketch_bytes:swb
        ~exact_bytes:(Sim.exact_dc_bytes stream)
    in
    ( {
        err;
        success;
        bytes = run.Sim.total_bytes + run.Sim.backbone_bytes;
        msgs = run.Sim.sends;
      },
      bound,
      opt_lb )
  end
  else
  let run =
    match cell.sketch with
    | Spec.Fm ->
      Sim.Dc_fm.run ?transport ?sink ?spans ~seed ~faults
        ~family:
          (Wd_sketch.Fm.with_estimator est
             (Wd_sketch.Fm.family_of_params ~alpha:acc ~delta ~seed))
        ~algorithm ~theta ~alpha:acc stream
    | Spec.Bjkst ->
      Dc_bjkst.run ?transport ?sink ?spans ~seed ~faults
        ~family:
          (Wd_sketch.Bjkst.with_estimator est
             (Wd_sketch.Bjkst.family_of_params ~alpha:acc ~delta ~seed))
        ~algorithm ~theta ~alpha:acc stream
    | Spec.Hll ->
      Dc_hll.run ?transport ?sink ?spans ~seed ~faults
        ~family:
          (Wd_sketch.Hyperloglog.with_estimator est
             (Wd_sketch.Hyperloglog.family_of_params ~alpha:acc ~delta ~seed))
        ~algorithm ~theta ~alpha:acc stream
    | Spec.Fmc ->
      Dc_fmc.run ?transport ?sink ?spans ~seed ~faults
        ~family:
          (Wd_sketch.Fm_concentrated.with_estimator est
             (Wd_sketch.Fm_concentrated.family_of_params ~alpha:acc ~delta
                ~seed))
        ~algorithm ~theta ~alpha:acc stream
  in
  let truth = max 1 run.Sim.dc_final_truth in
  let err =
    Float.abs (run.Sim.dc_final_estimate -. Float.of_int truth)
    /. Float.of_int truth
  in
  (* Continuous-tracking check: over the settled second half of the run,
     the coordinator's estimate must sit inside the alpha band nearly
     always (the pointwise guarantee holds with probability 1 - delta,
     so demand 1 - 2*delta of the samples). *)
  let series = run.Sim.dc_error_series in
  let n = Array.length series in
  let tail = Array.sub series (n / 2) (n - (n / 2)) in
  let in_band =
    Array.fold_left
      (fun a (_, e) -> if e <= cell.alpha then a + 1 else a)
      0 tail
  in
  let coverage =
    Float.of_int in_band /. Float.of_int (max 1 (Array.length tail))
  in
  let success =
    err <= cell.alpha && coverage >= 1.0 -. (2.0 *. cell.delta)
  in
  let bound =
    Theory.dc_bound ~algorithm ~sites:(Stream.num_sites stream)
      ~distinct:(Stream.distinct_count stream) ~theta ~sketch_bytes:swb
      ~exact_bytes:(Sim.exact_dc_bytes stream)
  in
  ( { err; success; bytes = run.Sim.dc_total_bytes; msgs = run.Sim.dc_sends },
    bound,
    opt_lb )

let ds_rep cfg (cell : Spec.cell) ~seed ?transport ?sink ?spans stream =
  (* The whole budget is the count-lag theta here (Lemma 2 bounds the
     tracked-count error by theta deterministically); the handicap
     inflates the lag the tracker runs with while acceptance still
     judges against the honest alpha. *)
  let theta = cell.alpha *. cfg.handicap *. cfg.handicap in
  let faults = parse_faults cell ~seed:(seed + 500) in
  let algorithm =
    match cell.protocol with Spec.Ds a -> a | _ -> assert false
  in
  let topology = parse_topology cell ~sites:(Stream.num_sites stream) in
  let run =
    Sim.run ?transport ?topology ?sink ?spans ~seed ~faults
      (Query.ds ~theta ~threshold:cfg.ds_threshold algorithm)
      stream
  in
  let err =
    match run.Sim.aux with
    | Sim.Ds_aux { max_count_error; _ } -> max_count_error
    | _ -> assert false
  in
  let mults = Stream.multiplicities stream in
  let max_mult = Hashtbl.fold (fun _ m acc -> max m acc) mults 1 in
  let bound =
    Theory.ds_bound ~algorithm ~sites:(Stream.num_sites stream)
      ~threshold:cfg.ds_threshold ~theta:cell.alpha ~max_mult
      ~updates:(Stream.length stream) ~exact_bytes:(Sim.exact_ds_bytes stream)
  in
  let opt_lb =
    Theory.opt_lower_bound cell ~sites:(Stream.num_sites stream)
      ~updates:(Stream.length stream) ~distinct:(Stream.distinct_count stream)
      ~threshold:cfg.ds_threshold ~sketch_bytes:0
  in
  ( {
      err;
      success = err <= cell.alpha;
      bytes = run.Sim.total_bytes + run.Sim.backbone_bytes;
      msgs = run.Sim.sends;
    },
    bound,
    opt_lb )

let hh_rep cfg (cell : Spec.cell) ~seed =
  ignore cfg.handicap;
  let algorithm =
    match cell.protocol with Spec.Hh a -> a | _ -> assert false
  in
  let http =
    Http.scaled ~seed
      (Float.of_int cell.events /. Float.of_int Http.default.requests)
  in
  let pairs =
    Sim.pair_stream_of_requests http (http_site_view cell)
      (Http.generate http)
  in
  let stream = Sim.stream_of_pairs pairs in
  let topology = parse_topology cell ~sites:(Stream.num_sites stream) in
  let run =
    Sim.run ?topology ~seed ~top_k:10
      (Query.hh
         ~config:{ Wd_aggregate.Fm_array.rows = 3; cols = 500; bitmaps = 10 }
         ~theta:(Spec.theta cell) algorithm)
      stream
  in
  let avg_norm_error, topk_recall, exact_bytes =
    match run.Sim.aux with
    | Sim.Hh_aux { avg_norm_error; topk_recall; exact_bytes } ->
      (avg_norm_error, topk_recall, exact_bytes)
    | _ -> assert false
  in
  let opt_lb =
    Theory.opt_lower_bound cell ~sites:(Stream.num_sites stream)
      ~updates:(Stream.length stream) ~distinct:(Stream.distinct_count stream)
      ~threshold:cfg.ds_threshold ~sketch_bytes:0
  in
  ( {
      err = avg_norm_error;
      success = avg_norm_error <= cell.alpha && topk_recall >= 0.5;
      bytes = run.Sim.total_bytes + run.Sim.backbone_bytes;
      msgs = run.Sim.sends;
    },
    Theory.hh_bound ~exact_bytes,
    opt_lb )

let window_rep cfg (cell : Spec.cell) ~seed stream =
  let algorithm =
    match cell.protocol with Spec.Window a -> a | _ -> assert false
  in
  let theta = Spec.theta cell in
  let acc = Spec.sketch_alpha cell *. Float.sqrt cfg.handicap in
  let family =
    Wd_sketch.Fm_window.family_of_params ~alpha:acc ~delta:cell.delta ~seed
  in
  let n = Stream.length stream in
  let window = max 1 (n / 4) in
  let t =
    W.create ~algorithm ~theta ~window ~sites:(Stream.num_sites stream)
      ~family ()
  in
  let truth = Wd_workload.Window_truth.create () in
  (* Sample the windowed error at ~64 positions in the settled second
     half (once the window is full). *)
  let samples = ref [] in
  let stride = max 1 (n / 128) in
  Stream.iteri
    (fun i ~site ~item ->
      W.observe t ~site ~time:i item;
      Wd_workload.Window_truth.add truth item;
      if i >= n / 2 && i mod stride = 0 then begin
        let exact = Wd_workload.Window_truth.distinct_last truth window in
        let est = W.estimate t ~now:i in
        samples :=
          (Float.abs (est -. Float.of_int (max 1 exact))
          /. Float.of_int (max 1 exact))
          :: !samples
      end)
    stream;
  let errs = Array.of_list !samples in
  let err = Stats.quantile errs 0.5 in
  let net = W.network t in
  let opt_lb =
    Theory.opt_lower_bound cell ~sites:(Stream.num_sites stream) ~updates:n
      ~distinct:(Stream.distinct_count stream) ~threshold:cfg.ds_threshold
      ~sketch_bytes:0
  in
  ( {
      err;
      success = err <= cell.alpha;
      bytes = Wd_net.Network.total_bytes net;
      msgs = W.sends t;
    },
    Theory.window_bound ~updates:n,
    opt_lb )

(* The Yi–Zhang rows: the optimal-tracking contenders beside the
   paper's protocols.  Their [alpha] is the tracking epsilon; accuracy
   acceptance checks the guarantee the algorithms actually make
   (counts within eps*N / median rank within eps of 1/2). *)
let yzhh_rep (cell : Spec.cell) ~seed ?sink ?spans stream =
  let faults = parse_faults cell ~seed:(seed + 500) in
  let topology = parse_topology cell ~sites:(Stream.num_sites stream) in
  let run =
    Sim.run ?topology ?sink ?spans ~seed ~faults
      (Query.yzhh ~epsilon:cell.alpha ())
      stream
  in
  let total_rel_error, max_rel_error, topk_recall =
    match run.Sim.aux with
    | Sim.Yz_hh_aux { total_rel_error; max_rel_error; topk_recall } ->
      (total_rel_error, max_rel_error, topk_recall)
    | _ -> assert false
  in
  let err = Float.max total_rel_error max_rel_error in
  let bound =
    Theory.yz_hh_bound ~sites:(Stream.num_sites stream) ~epsilon:cell.alpha
      ~updates:(Stream.length stream)
  in
  let opt_lb =
    Theory.opt_lower_bound cell ~sites:(Stream.num_sites stream)
      ~updates:(Stream.length stream) ~distinct:(Stream.distinct_count stream)
      ~threshold:0 ~sketch_bytes:0
  in
  ( {
      err;
      success = err <= cell.alpha && topk_recall >= 0.5;
      bytes = run.Sim.total_bytes + run.Sim.backbone_bytes;
      msgs = run.Sim.sends;
    },
    bound,
    opt_lb )

let yzq_rep (cell : Spec.cell) ~seed ?sink ?spans stream =
  let faults = parse_faults cell ~seed:(seed + 500) in
  let topology = parse_topology cell ~sites:(Stream.num_sites stream) in
  (* Match the tracked domain to the workload's value range: fewer
     dyadic levels means less stacked FM noise in every rank query. *)
  let universe = max 1024 cell.events in
  let run =
    Sim.run ?topology ?sink ?spans ~seed ~faults
      (Query.yzq ~epsilon:cell.alpha ~universe ())
      stream
  in
  let rank_error =
    match run.Sim.aux with
    | Sim.Yz_q_aux { rank_error; _ } -> rank_error
    | _ -> assert false
  in
  let bound =
    Theory.yz_q_bound ~sites:(Stream.num_sites stream) ~epsilon:cell.alpha
      ~updates:(Stream.length stream)
      ~distinct:(Stream.distinct_count stream)
  in
  let opt_lb =
    Theory.opt_lower_bound cell ~sites:(Stream.num_sites stream)
      ~updates:(Stream.length stream) ~distinct:(Stream.distinct_count stream)
      ~threshold:0 ~sketch_bytes:0
  in
  ( {
      err = rank_error;
      success = rank_error <= cell.alpha;
      bytes = run.Sim.total_bytes + run.Sim.backbone_bytes;
      msgs = run.Sim.sends;
    },
    bound,
    opt_lb )

let run_rep cfg (cell : Spec.cell) ~seed ?sink ?spans () =
  match (cell.protocol, cell.transport) with
  | Spec.Hh _, Spec.Sim -> hh_rep cfg cell ~seed
  | Spec.Window _, Spec.Sim ->
    window_rep cfg cell ~seed (build_stream cell ~seed)
  | Spec.Dc _, Spec.Sim ->
    dc_rep cfg cell ~seed ?sink ?spans (build_stream cell ~seed)
  | Spec.Ds _, Spec.Sim ->
    ds_rep cfg cell ~seed ?sink ?spans (build_stream cell ~seed)
  | Spec.Dc _, Spec.Socket ->
    let stream = build_stream cell ~seed in
    with_socket_sites ~dir:cfg.socket_dir ~sites:(Stream.num_sites stream)
      ~seed (fun transport -> dc_rep cfg cell ~seed ~transport ?sink ?spans stream)
  | Spec.Ds _, Spec.Socket ->
    let stream = build_stream cell ~seed in
    with_socket_sites ~dir:cfg.socket_dir ~sites:(Stream.num_sites stream)
      ~seed (fun transport -> ds_rep cfg cell ~seed ~transport ?sink ?spans stream)
  | Spec.Dc _, Spec.Tcp ->
    let stream = build_stream cell ~seed in
    with_tcp_relays ~sites:(Stream.num_sites stream) (fun transport ->
        dc_rep cfg cell ~seed ~transport ?sink ?spans stream)
  | Spec.Ds _, Spec.Tcp ->
    let stream = build_stream cell ~seed in
    with_tcp_relays ~sites:(Stream.num_sites stream) (fun transport ->
        ds_rep cfg cell ~seed ~transport ?sink ?spans stream)
  | Spec.Yz_hh, Spec.Sim ->
    yzhh_rep cell ~seed ?sink ?spans (build_stream cell ~seed)
  | Spec.Yz_q, Spec.Sim ->
    yzq_rep cell ~seed ?sink ?spans (build_stream cell ~seed)
  | ( (Spec.Hh _ | Spec.Window _ | Spec.Yz_hh | Spec.Yz_q),
      (Spec.Socket | Spec.Tcp) ) ->
    failwith
      (Printf.sprintf "cell %s: no wire backend for this protocol family"
         (Spec.id cell))

(* Nearest-rank digest of an informational measurement series. *)
let quantiles_of samples =
  if Array.length samples = 0 then None
  else
    Some
      {
        Artifact.q_p50 = Stats.quantile samples 0.5;
        q_p90 = Stats.quantile samples 0.9;
        q_max = Stats.max_value samples;
      }

let run_cell cfg (cell : Spec.cell) =
  let id = Spec.id cell in
  Option.iter (fun p -> p (Printf.sprintf "running %s" id)) cfg.progress;
  (* Timing instrumentation (informational artifact fields): each rep is
     individually wall-timed, and dc/ds reps run with a span recorder
     emitting into a bounded in-memory ring, from which observe_batch
     durations are digested.  Spans never influence the measured
     estimates or ledger bytes, only the timing digests. *)
  let ring = Sink.ring ~capacity:65536 in
  let t0 = Unix.gettimeofday () in
  let timed =
    List.init cfg.reps (fun r ->
      let r0 = Unix.gettimeofday () in
      let m = run_rep cfg cell ~seed:(cfg.base_seed + r) ~sink:ring ~spans:true () in
      (m, Unix.gettimeofday () -. r0))
  in
  let wall_s = Unix.gettimeofday () -. t0 in
  let measured = List.map fst timed in
  let rep_wall_s =
    quantiles_of (Array.of_list (List.map snd timed))
  in
  let batch_span_ns =
    quantiles_of
      (Array.of_list
         (List.filter_map
            (fun (ev : Event.t) ->
              match ev.Event.kind with
              | Event.Span { name = "observe_batch"; start_ns; end_ns; _ } ->
                Some (Int64.to_float (Int64.sub end_ns start_ns))
              | _ -> None)
            (Sink.ring_contents ring)))
  in
  let reps = List.map (fun (m, _, _) -> m) measured in
  let arr f = Array.of_list (List.map f reps) in
  let errs = arr (fun m -> m.err) in
  let ratios =
    Array.of_list
      (List.map
         (fun (m, bound, _) -> Float.of_int m.bytes /. Float.max 1.0 bound)
         measured)
  in
  let opt_ratios =
    Array.of_list
      (List.map
         (fun (m, _, lb) -> Float.of_int m.bytes /. Float.max 1.0 lb)
         measured)
  in
  let opt_lbs =
    Array.of_list (List.map (fun (_, _, lb) -> lb) measured)
  in
  let successes =
    List.fold_left (fun a m -> if m.success then a + 1 else a) 0 reps
  in
  let verdict =
    Stats.binomial_accept ~trials:cfg.reps ~successes
      ~null_p:(1.0 -. cell.delta) ~significance:cfg.significance
  in
  let ratio_ceiling = Theory.ceiling cell in
  let ratio_max = Stats.max_value ratios in
  let opt_ceiling = Theory.opt_ceiling cell in
  let opt_ratio_max = Stats.max_value opt_ratios in
  let opt =
    Some
      {
        Artifact.opt_lb_bytes = Stats.mean opt_lbs;
        opt_ratio_mean = Stats.mean opt_ratios;
        opt_ratio_max;
        opt_ceiling;
        opt_pass = opt_ratio_max <= opt_ceiling;
      }
  in
  let result =
    {
      Artifact.id;
      family = Spec.protocol_family cell.protocol;
      algorithm = Spec.protocol_algorithm cell.protocol;
      sketch = Spec.sketch_label cell;
      alpha = cell.alpha;
      delta = cell.delta;
      sites = cell.sites;
      events = cell.events;
      workload = Spec.workload_to_string cell.workload;
      transport = Spec.transport_to_string cell.transport;
      faults = cell.faults;
      topology = cell.topology;
      reps = cfg.reps;
      successes;
      accept_pass = verdict.Stats.pass;
      p_value = verdict.Stats.p_value;
      err_mean = Stats.mean errs;
      err_p50 = Stats.quantile errs 0.5;
      err_p90 = Stats.quantile errs 0.9;
      err_max = Stats.max_value errs;
      bytes_mean = Stats.mean (arr (fun m -> Float.of_int m.bytes));
      ratio_mean = Stats.mean ratios;
      ratio_max;
      ratio_ceiling;
      bytes_pass = ratio_max <= ratio_ceiling;
      opt;
      msgs_mean = Stats.mean (arr (fun m -> Float.of_int m.msgs));
      wall_s;
      rep_wall_s;
      batch_span_ns;
    }
  in
  Option.iter
    (fun m ->
      Metrics.inc (Metrics.counter m "wd_eval_cells_total");
      Metrics.add (Metrics.counter m "wd_eval_reps_total") cfg.reps;
      if not (Artifact.cell_pass result) then
        Metrics.inc (Metrics.counter m "wd_eval_cells_failed");
      Metrics.observe
        (Metrics.histogram m "wd_eval_cell_wall_ms")
        (wall_s *. 1000.0))
    cfg.metrics;
  Option.iter
    (fun p ->
      p
        (Printf.sprintf
           "%-44s %d/%d in-band (p=%.3g) err p90 %.4f ratio %.3g opt %.3g \
            [%s]"
           id successes cfg.reps verdict.Stats.p_value result.Artifact.err_p90
           ratio_max opt_ratio_max
           (if Artifact.cell_pass result then "pass" else "FAIL")))
    cfg.progress;
  result

let run_grid ?(name = "custom") cfg cells =
  {
    Artifact.grid = name;
    base_seed = cfg.base_seed;
    reps = cfg.reps;
    significance = cfg.significance;
    cells = List.map (run_cell cfg) cells;
  }
