(* Order statistics and the binomial acceptance test behind the eval
   harness (Clifford & Cosma's statistical treatment of probabilistic
   counting is the model: accept on a confidence statement over seeded
   repetitions, never on a single-run golden value). *)

let quantile xs q =
  let n = Array.length xs in
  if n = 0 then Float.nan
    (* Negated-range form so a NaN q is rejected too: [q < 0.0 || q > 1.0]
       is false for NaN, which would otherwise propagate silently into
       the rank arithmetic and come back as a NaN quantile. *)
  else if not (q >= 0.0 && q <= 1.0) then
    invalid_arg "Stats.quantile: q outside [0,1]"
  else begin
    let s = Array.copy xs in
    Array.sort compare s;
    (* Linear interpolation between closest ranks (type-7 estimator). *)
    let h = q *. Float.of_int (n - 1) in
    let lo = int_of_float (Float.floor h) in
    let hi = min (n - 1) (lo + 1) in
    let frac = h -. Float.of_int lo in
    (s.(lo) *. (1.0 -. frac)) +. (s.(hi) *. frac)
  end

let mean xs =
  let n = Array.length xs in
  if n = 0 then Float.nan
  else Array.fold_left ( +. ) 0.0 xs /. Float.of_int n

let max_value xs =
  if Array.length xs = 0 then Float.nan
  else Array.fold_left Float.max neg_infinity xs

(* C(n, k) in float; n is the repetition count, so tiny. *)
let choose n k =
  let k = min k (n - k) in
  let acc = ref 1.0 in
  for i = 1 to k do
    acc := !acc *. Float.of_int (n - k + i) /. Float.of_int i
  done;
  !acc

let binom_pmf ~n ~p k =
  if k < 0 || k > n then 0.0
  else if p <= 0.0 then (if k = 0 then 1.0 else 0.0)
  else if p >= 1.0 then (if k = n then 1.0 else 0.0)
  else
    choose n k
    *. Float.exp
         ((Float.of_int k *. Float.log p)
         +. (Float.of_int (n - k) *. Float.log (1.0 -. p)))

let binom_cdf ~n ~p k =
  if k < 0 then 0.0
  else if k >= n then 1.0
  else begin
    let acc = ref 0.0 in
    for i = 0 to k do
      acc := !acc +. binom_pmf ~n ~p i
    done;
    Float.min 1.0 !acc
  end

type verdict = { pass : bool; p_value : float }

let binomial_accept ~trials ~successes ~null_p ~significance =
  if trials <= 0 then invalid_arg "Stats.binomial_accept: trials must be > 0";
  if successes < 0 || successes > trials then
    invalid_arg "Stats.binomial_accept: successes outside [0, trials]";
  (* One-sided test of H0: per-trial success probability >= null_p.  The
     p-value is the chance of seeing this few successes (or fewer) if H0
     holds; reject only when that is below the significance level. *)
  let p_value = binom_cdf ~n:trials ~p:null_p successes in
  { pass = p_value >= significance; p_value }
