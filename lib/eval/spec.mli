(** Declarative experiment-matrix cells for the eval harness.

    A {!cell} names one point of the sweep — protocol x sketch backend x
    accuracy target x workload x transport (x optional fault plan) — and
    nothing about how to execute it; {!Runner} turns cells into measured
    {!Artifact.cell_result}s.  The committed acceptance grid is
    {!small}; {!full} adds the long-tail axes. *)

type sketch = Fm | Bjkst | Hll | Fmc

val sketch_to_string : sketch -> string

val all_sketches : sketch list
(** The original trio; the concentrated-hashing family [Fmc] is added
    to grids explicitly so existing sweeps keep their size. *)

type estimator = Classic | Mle
(** Which estimate the sketch-backed trackers run with: the classic
    bias-corrected estimators or the Clifford–Cosma maximum-likelihood
    ones ({!Wd_sketch.Estimators}). *)

val estimator_to_string : estimator -> string

type workload = Zipf | Two_phase | Http_trace

val workload_to_string : workload -> string

type transport = Sim | Socket | Tcp

val transport_to_string : transport -> string

type protocol =
  | Dc of Wd_protocol.Dc_tracker.algorithm  (** [Dc EC] is the exact baseline *)
  | Ds of Wd_protocol.Ds_tracker.algorithm  (** [Ds EDS] is the exact baseline *)
  | Hh of Wd_protocol.Dc_tracker.algorithm
      (** distinct heavy hitters over (objectID, clientID) pairs *)
  | Window of Wd_protocol.Window_tracker.algorithm
  | Yz_hh
      (** Yi–Zhang optimal frequency heavy hitters
          ({!Wd_protocol.Yz_hh_tracker}); the cell's [alpha] is its
          epsilon *)
  | Yz_q
      (** Yi–Zhang duplicate-resilient quantiles
          ({!Wd_aggregate.Yz_quantile_tracker}); the cell's [alpha] is
          its epsilon *)

val protocol_family : protocol -> string
(** ["dc"], ["ds"], ["hh"], ["window"], ["yzhh"] or ["yzq"]. *)

val protocol_algorithm : protocol -> string

type cell = {
  protocol : protocol;
  sketch : sketch;
      (** which mergeable distinct sketch backs the trackers; only the
          sketch-based protocols consult it (grids collapse the axis for
          EC/EDS, whose estimators carry no sketch) *)
  estimator : estimator;
      (** Classic or MLE estimates; consulted by the same protocols as
          [sketch].  [Classic] cells keep their pre-axis ids; [Mle]
          appends ["+mle"] to the id's sketch component. *)
  alpha : float;  (** total relative-error budget (the paper's epsilon) *)
  delta : float;  (** failure probability; confidence is [1 - delta] *)
  theta_frac : float;  (** lag share: [theta = theta_frac * alpha] *)
  sites : int;
  events : int;
  dup : float;
      (** target duplication factor dial (zipf: [universe = events/dup]) *)
  workload : workload;
  transport : transport;
  faults : string option;
      (** {!Wd_net.Faults.of_spec} syntax, seeded per repetition *)
  views : int;
      (** standing views sharing the run's stream: [1] = just the
          primary; [N > 1] adds [N - 1] key-class fanout satellites to
          the registry (DC cells only).  Ids get a ["-vN"] suffix. *)
  topology : string option;
      (** {!Wd_net.Topology.of_spec} syntax; [None] is the flat star.
          A tree routes contributions site→aggregator→root with per-hop
          ledger accounting; the cell's measured bytes become the
          backbone-inclusive grand total and its id gains a ["-topo:"]
          suffix.  HTTP cells with a topology use the per-server site
          view, so ["tree:regions=4"] is the paper's hierarchical CDN
          deployment (29 servers under 4 regional aggregators). *)
}

val theta : cell -> float
(** [theta_frac * alpha]. *)

val sketch_alpha : cell -> float
(** Sketch accuracy left after the lag share of the budget:
    [alpha - theta]. *)

val sketch_label : cell -> string
(** The id's sketch component: [sketch_to_string], with ["+mle"]
    appended for [Mle] cells. *)

val id : cell -> string
(** Stable human-readable identifier, the join key of baseline diffs. *)

val base :
  ?sketch:sketch ->
  ?estimator:estimator ->
  ?alpha:float ->
  ?delta:float ->
  ?theta_frac:float ->
  ?sites:int ->
  ?events:int ->
  ?dup:float ->
  ?workload:workload ->
  ?transport:transport ->
  ?faults:string ->
  ?views:int ->
  ?topology:string ->
  protocol ->
  cell
(** A cell with the acceptance-grid defaults (alpha 0.1, delta 0.1,
    theta_frac 0.3, 4 sites, 120k zipf events at duplication 3, simulated
    transport, no faults). *)

val small : unit -> cell list
(** The committed acceptance grid: DC(LS) x {FM, BJKST, HLL, FMC} and
    the EC / DS(LCO) / EDS baselines, each at alpha in {0.05, 0.1, 0.2},
    one MLE cell per MLE-capable sketch family (FM, HLL, FMC) at the
    default alpha, the Unix-socket and TCP smoke cells, one 100-view
    registry smoke cell, and the hierarchical cells: DC(LS) and YZ
    quantiles behind a two-aggregator tree, plus HH and YZ heavy
    hitters on the WorldCup per-server view under the 4-region
    backbone. *)

val full : unit -> cell list
(** {!small} plus the remaining DC/DS algorithms, the two-phase and HTTP
    workloads, fault-injected cells, a wider site count, and the HH and
    sliding-window trackers. *)

val by_name : string -> cell list option
(** ["small"] and ["full"]. *)
