(** Execute {!Spec} cells and aggregate them into {!Artifact} records.

    Every cell runs [reps] seeded repetitions (seeds [base_seed],
    [base_seed + 1], ...); workloads, sketch families and fault plans are
    all rebuilt per repetition, so a grid is a pure function of its
    configuration — re-running with the same config reproduces the
    artifact bit for bit (modulo [wall_s]). *)

type config = {
  reps : int;  (** repetitions per cell (>= 5 for the acceptance test) *)
  base_seed : int;
  significance : float;  (** binomial-test rejection level *)
  handicap : float;
      (** injected-estimator-bug dial, 1.0 = honest.  [h] scales DC/window
          sketch accuracy by [sqrt h] (equivalent to cutting FM
          repetitions [h]-fold) and inflates the DS count lag [h^2]-fold
          while acceptance still judges against the honest budget —
          regression-detection tests run with [h > 1] and expect the grid
          to fail. *)
  ds_threshold : int;  (** distinct-sample size bound T *)
  socket_dir : string;  (** where socket cells place their transient paths *)
  progress : (string -> unit) option;  (** per-cell progress lines *)
  metrics : Wd_obs.Metrics.t option;
      (** receives [wd_eval_cells_total], [wd_eval_cells_failed],
          [wd_eval_reps_total] counters and a [wd_eval_cell_wall_ms]
          histogram *)
}

val default_config : config
(** 5 reps, seed 42, significance 0.005, honest, T = 400, sockets in the
    system temp dir, silent, no metrics. *)

val run_cell : config -> Spec.cell -> Artifact.cell_result
(** Raises [Failure] on malformed fault specs and on socket cells for
    protocol families without a socket backend (HH, windows). *)

val run_grid : ?name:string -> config -> Spec.cell list -> Artifact.t
