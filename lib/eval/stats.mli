(** Order statistics and the binomial acceptance test behind the eval
    harness.

    The acceptance discipline follows the statistical analyses of
    probabilistic counting (Clifford & Cosma; see PAPERS.md): a cell is
    judged on a confidence statement over [R] seeded repetitions — "at
    least this many repetitions landed inside the [(1 ± alpha)] band" —
    tested against the binomial law that the configured confidence
    implies, never on a single-run golden value. *)

val quantile : float array -> float -> float
(** [quantile xs q] is the [q]-quantile ([0 <= q <= 1]) of [xs] with
    linear interpolation between closest ranks (the common "type 7"
    estimator); [nan] on an empty array.  Does not mutate [xs]. *)

val mean : float array -> float
(** Arithmetic mean; [nan] on an empty array. *)

val max_value : float array -> float
(** Largest element; [nan] on an empty array. *)

val binom_pmf : n:int -> p:float -> int -> float
(** [binom_pmf ~n ~p k] is [P(X = k)] for [X ~ Binomial(n, p)]; [0] for
    [k] outside [0, n].  Total at the parameter boundaries: [p = 0]
    puts all mass on [k = 0], [p = 1] on [k = n]. *)

val binom_cdf : n:int -> p:float -> int -> float
(** [binom_cdf ~n ~p k] is [P(X <= k)] for [X ~ Binomial(n, p)]. *)

type verdict = { pass : bool; p_value : float }

val binomial_accept :
  trials:int -> successes:int -> null_p:float -> significance:float -> verdict
(** One-sided exact binomial test of [H0: per-trial success probability
    >= null_p].  [p_value = P(X <= successes | Binomial(trials, null_p))];
    the cell {e fails} only when the p-value drops below [significance]
    — i.e. when seeing so few in-band repetitions would be implausible
    under the configured confidence.  Raises [Invalid_argument] on
    [trials <= 0] or [successes] outside [0, trials]. *)
