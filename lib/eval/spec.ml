(* Declarative experiment-matrix cells for the eval harness. *)

module Dc = Wd_protocol.Dc_tracker
module Ds = Wd_protocol.Ds_tracker
module W = Wd_protocol.Window_tracker

type sketch = Fm | Bjkst | Hll | Fmc

let sketch_to_string = function
  | Fm -> "fm"
  | Bjkst -> "bjkst"
  | Hll -> "hll"
  | Fmc -> "fmc"

let all_sketches = [ Fm; Bjkst; Hll ]

type estimator = Classic | Mle

let estimator_to_string = function Classic -> "classic" | Mle -> "mle"

type workload = Zipf | Two_phase | Http_trace

let workload_to_string = function
  | Zipf -> "zipf"
  | Two_phase -> "two_phase"
  | Http_trace -> "http_trace"

type transport = Sim | Socket | Tcp

let transport_to_string = function
  | Sim -> "sim"
  | Socket -> "socket"
  | Tcp -> "tcp"

type protocol =
  | Dc of Dc.algorithm  (* EC is [Dc EC] *)
  | Ds of Ds.algorithm  (* EDS is [Ds EDS] *)
  | Hh of Dc.algorithm
  | Window of W.algorithm
  | Yz_hh  (* Yi–Zhang frequency heavy hitters; alpha is its epsilon *)
  | Yz_q  (* Yi–Zhang duplicate-resilient quantiles; alpha is its epsilon *)

let protocol_family = function
  | Dc _ -> "dc"
  | Ds _ -> "ds"
  | Hh _ -> "hh"
  | Window _ -> "window"
  | Yz_hh -> "yzhh"
  | Yz_q -> "yzq"

let protocol_algorithm = function
  | Dc a -> Dc.algorithm_to_string a
  | Ds a -> Ds.algorithm_to_string a
  | Hh a -> Dc.algorithm_to_string a
  | Window a -> W.algorithm_to_string a
  | Yz_hh | Yz_q -> "YZ"

type cell = {
  protocol : protocol;
  sketch : sketch;
      (* which mergeable distinct sketch backs the trackers; only the
         sketch-based protocols consult it (grids collapse the axis for
         EC/EDS, whose estimators carry no sketch) *)
  estimator : estimator;
      (* Classic bias-corrected estimates or the Clifford–Cosma MLE;
         consulted by the same protocols as [sketch] *)
  alpha : float;  (* total relative-error budget (the paper's epsilon) *)
  delta : float;  (* failure probability; confidence is 1 - delta *)
  theta_frac : float;  (* lag share: theta = theta_frac * alpha *)
  sites : int;
  events : int;
  dup : float;  (* target duplication factor dial (zipf: universe = events/dup) *)
  workload : workload;
  transport : transport;
  faults : string option;  (* Wd_net.Faults.of_spec syntax, seeded per rep *)
  views : int;
      (* standing views sharing the run's stream: 1 = just the primary;
         N > 1 adds N-1 key-class fanout satellites to the registry *)
  topology : string option;
      (* Wd_net.Topology.of_spec syntax; [None] is the flat star.  A
         tree routes contributions site->aggregator->root with per-hop
         ledger accounting, and the cell's bytes become the
         backbone-inclusive grand total.  HTTP cells with a topology
         switch to the per-server site view (29 sites), so
         [tree:regions=4] reproduces the paper's hierarchical CDN
         deployment: servers under regional aggregators under the
         root. *)
}

let theta cell = cell.theta_frac *. cell.alpha

(* Sketch accuracy left after the lag share of the budget. *)
let sketch_alpha cell = cell.alpha -. theta cell

(* Classic cells keep the pre-estimator-axis labels so committed
   baselines stay joinable; Mle tags the sketch component. *)
let sketch_label cell =
  match cell.estimator with
  | Classic -> sketch_to_string cell.sketch
  | Mle -> sketch_to_string cell.sketch ^ "+mle"

let id cell =
  String.concat "-"
    ([
       protocol_family cell.protocol;
       protocol_algorithm cell.protocol;
       sketch_label cell;
       Printf.sprintf "a%g" cell.alpha;
       Printf.sprintf "k%d" cell.sites;
       workload_to_string cell.workload;
       Printf.sprintf "n%d" cell.events;
       transport_to_string cell.transport;
     ]
    @ (if cell.views > 1 then [ Printf.sprintf "v%d" cell.views ] else [])
    @ (match cell.topology with None -> [] | Some t -> [ "topo:" ^ t ])
    @ match cell.faults with None -> [] | Some f -> [ "faults:" ^ f ])

let base ?(sketch = Fm) ?(estimator = Classic) ?(alpha = 0.1) ?(delta = 0.1)
    ?(theta_frac = 0.3) ?(sites = 4) ?(events = 120_000) ?(dup = 3.0)
    ?(workload = Zipf) ?(transport = Sim) ?faults ?(views = 1) ?topology
    protocol =
  {
    protocol;
    sketch;
    estimator;
    alpha;
    delta;
    theta_frac;
    sites;
    events;
    dup;
    workload;
    transport;
    faults;
    views;
    topology;
  }

let small_alphas = [ 0.05; 0.1; 0.2 ]

(* The acceptance grid: EC/EDS/DC/DS x {FM, BJKST, HLL, FMC} x alpha x
   estimator.  The sketch axis collapses for the exact baselines (EC
   counts items and EDS forwards updates — no sketch to vary) and for
   the sampler-based DS protocol, so those run once per alpha; DC
   (represented by LS, the paper's winner) spans the full sketch axis.
   The concentrated-hashing FM family runs at every alpha, and the MLE
   estimator rides along on one cell per sketch family that supports it
   at the default alpha.  One Unix-socket smoke cell and one
   multiplexed-TCP smoke cell ride along so both wire paths are
   exercised by every eval run. *)
let small () =
  let dc_cells =
    List.concat_map
      (fun alpha ->
        List.map
          (fun sk -> base ~sketch:sk ~alpha (Dc Dc.LS))
          (all_sketches @ [ Fmc ]))
      small_alphas
  in
  let mle_cells =
    List.map
      (fun sk -> base ~sketch:sk ~estimator:Mle (Dc Dc.LS))
      [ Fm; Hll; Fmc ]
  in
  let baseline_cells =
    List.concat_map
      (fun alpha ->
        [ base ~alpha (Dc Dc.EC); base ~alpha (Ds Ds.LCO);
          base ~alpha (Ds Ds.EDS) ])
      small_alphas
  in
  let wire_smoke =
    [
      base ~alpha:0.1 ~events:20_000 ~transport:Socket (Dc Dc.LS);
      base ~alpha:0.1 ~events:20_000 ~transport:Tcp (Dc Dc.LS);
    ]
  in
  (* Multi-view smoke: the default DC(LS) cell re-run with 99 key-class
     fanout satellites sharing the primary's hash-once stream.  The
     primary's accuracy must be unchanged by the fan-out, so this cell's
     err/bytes join 1:1 against the views-free LS-fm cell. *)
  let view_cells = [ base ~views:100 (Dc Dc.LS) ] in
  (* Hierarchical cells: the default DC(LS) routed through two regional
     aggregators, the HH tracker on the WorldCup trace's per-server view
     under the paper's 4-region backbone, the Yi–Zhang heavy-hitter
     contender on the same deployment (its bytes must undercut HH's —
     that delta is what "optimal tracking" buys), and the Yi–Zhang
     duplicate-resilient quantile tracker on the zipf workload behind
     the same two-aggregator tree as the DC cell. *)
  let tree_cells =
    [
      base ~topology:"tree:regions=2" (Dc Dc.LS);
      base ~workload:Http_trace ~events:40_000 ~topology:"tree:regions=4"
        (Hh Dc.LS);
      base ~workload:Http_trace ~events:40_000 ~topology:"tree:regions=4"
        Yz_hh;
      base ~topology:"tree:regions=2" Yz_q;
    ]
  in
  dc_cells @ mle_cells @ baseline_cells @ wire_smoke @ view_cells
  @ tree_cells

(* The full matrix adds the remaining DC algorithms, the DS sharing
   variants, the paper's two-phase and HTTP workloads, a fault-plan
   column, a wider site count, and the HH / sliding-window trackers. *)
let full () =
  small ()
  @ List.concat_map
      (fun a -> [ base (Dc a); base ~workload:Two_phase (Dc a) ])
      [ Dc.NS; Dc.SC; Dc.SS ]
  @ [
      base (Ds Ds.GCS);
      base (Ds Ds.LCS);
      base ~workload:Two_phase (Ds Ds.LCO);
      base ~workload:Http_trace ~events:40_000 (Dc Dc.LS);
      base ~workload:Http_trace ~events:40_000 (Ds Ds.LCO);
      base ~sites:8 (Dc Dc.LS);
      base ~faults:"drop=0.05,dup=0.01" (Dc Dc.LS);
      base ~faults:"drop=0.05,dup=0.01" (Ds Ds.LCO);
      base ~workload:Http_trace ~events:40_000 (Hh Dc.LS);
      base ~workload:Http_trace ~events:40_000 (Hh Dc.NS);
      base ~events:60_000 (Window W.NS);
      base ~events:60_000 (Window W.LS);
    ]

let by_name = function
  | "small" -> Some (small ())
  | "full" -> Some (full ())
  | _ -> None
