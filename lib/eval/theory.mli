(** Communication envelopes: per-cell upper bounds on protocol traffic.

    The eval harness normalizes measured bytes against these bounds
    ([bytes_ratio = measured / bound]) so acceptance is scale-free: the
    committed baseline stays meaningful when grid sizes change.  The
    bounds follow the paper's cost analyses (Theorem 1 for DC, Theorem 2
    for DS) as envelopes; {!ceiling} grants each protocol family its
    constant-factor slack. *)

val dc_sends_bound : sites:int -> distinct:int -> theta:float -> float
(** Theorem 1's ladder bound on site-to-coordinator messages:
    [k * (log_{1+theta/k} N0 + 1)]. *)

val dc_bound :
  algorithm:Wd_protocol.Dc_tracker.algorithm ->
  sites:int ->
  distinct:int ->
  theta:float ->
  sketch_bytes:int ->
  exact_bytes:int ->
  float
(** Total-byte envelope for a DC run; [sketch_bytes] is the measured
    wire size of a fully loaded sketch of the cell's family, and
    [exact_bytes] the EC baseline ({!Whats_different.Simulation.exact_dc_bytes}),
    which is also the (computed, not bounded) envelope for [EC] itself. *)

val ds_bound :
  algorithm:Wd_protocol.Ds_tracker.algorithm ->
  sites:int ->
  threshold:int ->
  theta:float ->
  max_mult:int ->
  updates:int ->
  exact_bytes:int ->
  float
(** Total-byte envelope for a DS run from Theorem 2's retained-item
    accounting; [max_mult] is the stream's largest multiplicity. *)

val hh_bound : exact_bytes:int -> float
(** The HH envelope is the exact pair-forwarding baseline. *)

val window_bound : updates:int -> float
(** The window envelope is
    {!Wd_protocol.Window_tracker.exact_bytes}. *)

val yz_hh_bound : sites:int -> epsilon:float -> updates:int -> float
(** Total-byte envelope for a Yi–Zhang heavy-hitter run: at most
    [4k/eps] reports per count-doubling round over [log2 N] rounds,
    plus the round broadcasts. *)

val yz_q_bound :
  sites:int -> epsilon:float -> updates:int -> distinct:int -> float
(** Total-byte envelope for a Yi–Zhang quantile run: site-deduped item
    shipments (at most [min (updates, k*D)] items) plus [4k/eps]
    flushes per distinct-doubling round and the round broadcasts. *)

val ceiling : Spec.cell -> float
(** Acceptance ceiling on [measured / bound] for this cell's protocol
    family; the bytes check fails above it. *)

(** {1 Optimality gap}

    Lower-bound envelopes on the traffic any correct protocol must pay
    for the cell's tracking problem: the paper's
    [Omega(k + sqrt(k)/alpha)] message bound for distinct tracking
    (priced at the cell's measured sketch wire size), the Yi–Zhang
    [Omega((k/eps) log n)] bound for the YZ rows, and the computed
    first-occurrence / every-update floors for the exact baselines.
    The eval reports [opt_ratio = measured / optimum] per cell and
    gates it at {!opt_ceiling}. *)

val opt_lower_bound :
  Spec.cell ->
  sites:int ->
  updates:int ->
  distinct:int ->
  threshold:int ->
  sketch_bytes:int ->
  float
(** [sites] is the stream's realized site count (HTTP views override
    the cell's), [distinct] its realized distinct count, [threshold]
    the DS sampler threshold (ignored elsewhere), and [sketch_bytes]
    the measured wire size of a loaded sketch of the cell's family
    (ignored by families that ship no sketch). *)

val opt_ceiling : Spec.cell -> float
(** Acceptance ceiling on [measured / optimum] for this cell's
    protocol family; the optimality-gap check fails above it. *)
