(** Communication envelopes: per-cell upper bounds on protocol traffic.

    The eval harness normalizes measured bytes against these bounds
    ([bytes_ratio = measured / bound]) so acceptance is scale-free: the
    committed baseline stays meaningful when grid sizes change.  The
    bounds follow the paper's cost analyses (Theorem 1 for DC, Theorem 2
    for DS) as envelopes; {!ceiling} grants each protocol family its
    constant-factor slack. *)

val dc_sends_bound : sites:int -> distinct:int -> theta:float -> float
(** Theorem 1's ladder bound on site-to-coordinator messages:
    [k * (log_{1+theta/k} N0 + 1)]. *)

val dc_bound :
  algorithm:Wd_protocol.Dc_tracker.algorithm ->
  sites:int ->
  distinct:int ->
  theta:float ->
  sketch_bytes:int ->
  exact_bytes:int ->
  float
(** Total-byte envelope for a DC run; [sketch_bytes] is the measured
    wire size of a fully loaded sketch of the cell's family, and
    [exact_bytes] the EC baseline ({!Whats_different.Simulation.exact_dc_bytes}),
    which is also the (computed, not bounded) envelope for [EC] itself. *)

val ds_bound :
  algorithm:Wd_protocol.Ds_tracker.algorithm ->
  sites:int ->
  threshold:int ->
  theta:float ->
  max_mult:int ->
  updates:int ->
  exact_bytes:int ->
  float
(** Total-byte envelope for a DS run from Theorem 2's retained-item
    accounting; [max_mult] is the stream's largest multiplicity. *)

val hh_bound : exact_bytes:int -> float
(** The HH envelope is the exact pair-forwarding baseline. *)

val window_bound : updates:int -> float
(** The window envelope is
    {!Wd_protocol.Window_tracker.exact_bytes}. *)

val ceiling : Spec.cell -> float
(** Acceptance ceiling on [measured / bound] for this cell's protocol
    family; the bytes check fails above it. *)
