(** The [wd-eval/1] result artifact.

    One evaluation run serializes to a versioned JSON document (the
    committed {e baseline} and CI uploads use the pretty rendering so
    humans can diff them in review) and a CSV flattening; {!diff}
    implements the regression gate between a stored baseline and a fresh
    run. *)

val version : string
(** ["wd-eval/1"]; {!of_json} rejects documents claiming any other. *)

type quantiles = { q_p50 : float; q_p90 : float; q_max : float }
(** Nearest-rank digest of one informational measurement series. *)

type opt_gap = {
  opt_lb_bytes : float;
      (** {!Theory.opt_lower_bound} — the optimum any correct protocol
          must pay for this cell's tracking problem *)
  opt_ratio_mean : float;  (** mean of measured bytes / optimum *)
  opt_ratio_max : float;
  opt_ceiling : float;  (** {!Theory.opt_ceiling} at measurement time *)
  opt_pass : bool;  (** [opt_ratio_max <= opt_ceiling] *)
}
(** The optimality-gap columns: how far a cell's measured traffic sits
    above the theoretical optimum for its problem. *)

type cell_result = {
  id : string;  (** {!Spec.id} of the cell — the diff join key *)
  family : string;
  algorithm : string;
  sketch : string;
  alpha : float;
  delta : float;
  sites : int;
  events : int;
  workload : string;
  transport : string;
  faults : string option;
  topology : string option;  (** tree spec; [None] is the flat star *)
  reps : int;  (** seeded repetitions measured *)
  successes : int;  (** repetitions whose error landed in the alpha band *)
  accept_pass : bool;  (** verdict of the binomial acceptance test *)
  p_value : float;
  err_mean : float;
  err_p50 : float;
  err_p90 : float;
  err_max : float;  (** error statistics over the repetitions *)
  bytes_mean : float;  (** mean measured protocol traffic *)
  ratio_mean : float;  (** mean of measured / {!Theory} envelope *)
  ratio_max : float;
  ratio_ceiling : float;  (** {!Theory.ceiling} at measurement time *)
  bytes_pass : bool;  (** [ratio_max <= ratio_ceiling] *)
  opt : opt_gap option;
      (** optimality-gap columns; decodes leniently ([None] for
          artifacts written before the gate existed, which then pass it
          trivially) *)
  msgs_mean : float;  (** mean site-to-coordinator messages *)
  wall_s : float;  (** total wall time — informational, never diffed *)
  rep_wall_s : quantiles option;
      (** per-repetition wall seconds — informational, never diffed *)
  batch_span_ns : quantiles option;
      (** [observe_batch] span durations in nanoseconds, when the cell
          ran with a span recorder — informational, never diffed.
          Both digests decode leniently: artifacts written before these
          fields existed load as [None]. *)
}

val cell_pass : cell_result -> bool
(** Accuracy, traffic-envelope and optimality-gap checks all pass. *)

type t = {
  grid : string;
  base_seed : int;
  reps : int;
  significance : float;
  cells : cell_result list;
}

val pass : t -> bool

val to_json : t -> Wd_obs.Json.t

val of_json : Wd_obs.Json.t -> (t, string) result

val of_string : string -> (t, string) result

val save : path:string -> t -> unit
(** Pretty JSON, trailing newline. *)

val load : string -> (t, string) result

val to_csv : t -> string

val save_csv : path:string -> t -> unit

(** {1 Baseline diff} *)

type diff = {
  regressions : string list;
      (** human-readable, one per gate violation; empty = clean *)
  notes : string list;
      (** non-gating observations (new cells, newly passing cells) *)
}

val clean : diff -> bool

val diff : baseline:t -> current:t -> diff
(** A cell regresses when it disappears, flips a passing check to
    failing, loses its optimality-gap columns, or drifts past 1.5x the
    baseline on traffic ratio, optimality ratio or p90 error (with a
    0.01 absolute error floor so near-zero baselines don't alarm on
    noise).  Wall time is never compared. *)
